"""Incremental SCC maintenance over a mutable delta-overlay graph.

A static pipeline recomputes every label from scratch on any edge
change — O(N + M) per update, which no streaming workload can afford.
:class:`DynamicSCC` maintains the SCC partition *incrementally* in the
style of Sa, "Maintenance of Strongly Connected Component in
Shared-memory Graph" (arXiv:1804.01276): the expensive global
machinery only runs on the *affected region*, and most updates settle
in O(1).

The index it maintains, besides the label array itself:

* **members** — label (the minimum member id, the canonical
  representative) → sorted member array;
* **condensation adjacency** — an explicit DAG,
  ``cid -> {successor cid: edge multiplicity}`` in both directions,
  maintained incrementally (increment/decrement on cross-component
  edges, counter surgery on merges, restricted recount on splits).
  Searches and level cascades walk this index at O(condensation
  degree) per step instead of re-deriving successors from the raw
  adjacency — the difference between microseconds and milliseconds
  per visit once a giant component exists.  The DAG is keyed by a
  stable *condensation node id* (cid) decoupled from the min-member
  label: a merge folds the smaller components into the densest one's
  cid and re-labels nothing else, so absorbing a satellite into the
  giant costs O(satellite degree), not O(giant degree) — the
  ``rep <-> cid`` maps are the only things renamed;
* **levels** — a pseudo-topological level per component with the
  invariant ``level[a] < level[b]`` for every condensation edge
  ``a -> b`` (Katriel/Bodlaender-style), kept in a plain dict keyed
  by representative (every read goes through a label; a dict lookup
  beats a numpy scalar fetch in the pure-Python cascade loops).  The
  invariant is the O(1) no-cycle certificate: an insert whose
  endpoints already satisfy it cannot close a condensation cycle and
  needs no search at all.  Levels are kept *minimal* (a component
  sits one above its highest predecessor), which keeps the search
  windows below tight.

Update taxonomy (mirrored in :class:`DynamicStats`):

* *insert, same component* — the SCC partition is unchanged; O(1).
* *insert, level-compatible* (``level[Lu] < level[Lv]``) — cannot form
  a cycle; O(1).
* *insert, level-violating* — an *interleaved bidirectional* search
  over the condensation: forward from ``Lv`` through components with
  ``level <= level[Lu]``, backward from ``Lu`` through components
  with ``level > level[Lv]`` (any ``Lv → Lu`` path ascends strictly
  through both windows).  Whichever flood exhausts first certifies
  "no cycle" at the cost of the *smaller* affected side; first
  frontier contact certifies a cycle, after which the cheaper flood
  is completed and the opposite flood restricted to it yields exactly
  the components on ``Lv → Lu`` paths — those **merge**, a label
  union over the condensation cycle, O(affected).
* *delete, cross-component* — condensation loses one edge; removing a
  constraint can never break the level invariant; O(1).
* *delete, intra-component* — first a restricted *bidirectional*
  reachability probe ``u -> v`` inside the component (the *intact
  certificate*: if ``u`` still reaches ``v``, every pair stays
  strongly connected and nothing changes; meeting in the middle costs
  roughly two ball radii instead of one full component sweep).  Only when the probe fails does the component **split**:
  FW-BW peeling — the paper's phase-2 batch kernel
  (:func:`repro.core.recurfwbw.multi_source_reach`, up to 64
  bit-packed waves per sweep) — runs on the *induced subgraph of that
  component only*, and the split parts get levels from the old level
  plus their topological rank.
* past ``damage_threshold`` (component size as a fraction of the
  graph) the restricted recompute would approach global cost anyway,
  so the maintainer falls back to one full rebuild from the merged
  snapshot.

Every traversal here reads the graph through the merged delta view
(:func:`repro.kernels.delta_expand_frontier`), so labels stay exact
mid-log without waiting for compaction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.recurfwbw import multi_source_reach
from ..core.tarjan import tarjan_scc
from ..graph import CSRGraph
from ..graph.delta import DeltaCSR
from ..kernels import (
    MS_BW_ONLY,
    MS_FW_ONLY,
    MS_MAX_WAVES,
    MS_SCC,
    MS_UNREACHED,
    delta_expand_frontier,
    ms_fwbw_intersect,
)

__all__ = ["DynamicSCC", "DynamicStats", "DEFAULT_DAMAGE_THRESHOLD"]

#: component-size fraction of the graph past which an intra-component
#: delete recompute degrades to one full rebuild.
DEFAULT_DAMAGE_THRESHOLD = 0.5

_EMPTY = np.empty(0, dtype=np.int64)

#: shared empty adjacency for reps with no condensation neighbors.
_NO_NEIGHBORS: Dict[int, int] = {}


def rep_labels(labels: np.ndarray) -> np.ndarray:
    """Normalize arbitrary SCC labels to minimum-member-id labels.

    The partition is what matters; pinning the representative to the
    smallest member id makes the maintained array deterministic and
    directly comparable across full recomputes.
    """
    labels = np.asarray(labels, dtype=np.int64)
    n = labels.shape[0]
    uniq, inv = np.unique(labels, return_inverse=True)
    reps = np.full(uniq.shape[0], n, dtype=np.int64)
    np.minimum.at(reps, inv, np.arange(n, dtype=np.int64))
    return reps[inv]


def _group_members(labels: np.ndarray) -> Dict[int, np.ndarray]:
    """label -> sorted member-id array (labels must be rep-normalized)."""
    order = np.argsort(labels, kind="stable")
    sorted_l = labels[order]
    if sorted_l.size == 0:
        return {}
    starts = np.flatnonzero(np.r_[True, sorted_l[1:] != sorted_l[:-1]])
    bounds = np.r_[starts, sorted_l.size]
    # stable argsort keeps member ids ascending within a label group
    return {
        int(sorted_l[starts[i]]): order[bounds[i] : bounds[i + 1]]
        for i in range(starts.size)
    }


@dataclass
class DynamicStats:
    """Where a stream's updates landed in the taxonomy."""

    inserts: int = 0
    deletes: int = 0
    #: updates that did not change the graph (idempotent replays).
    noops: int = 0
    #: O(1) settled inserts (same component / level-compatible).
    fast_inserts: int = 0
    #: inserts needing the bounded condensation search but no merge.
    searched_inserts: int = 0
    #: label unions performed, and components folded by them.
    merges: int = 0
    merged_components: int = 0
    #: intra-component deletes settled by the intact certificate.
    intact_deletes: int = 0
    #: cross-component (O(1)) deletes.
    cross_deletes: int = 0
    #: restricted FW-BW recomputes, and components they produced.
    splits: int = 0
    split_components: int = 0
    #: damage-threshold full rebuilds.
    rebuilds: int = 0
    #: level-raise queue pops across all cascades.
    cascade_visits: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class DynamicSCC:
    """Maintains SCC labels over a :class:`DeltaCSR` under edge updates.

    Parameters
    ----------
    delta:
        The mutable graph overlay; this object becomes its sole
        mutator (labels would rot if edges changed behind its back).
    labels:
        Current SCC labels of the delta's merged view (any correct
        labeling; normalized to min-member representatives here).
        ``None`` computes them from scratch.
    damage_threshold:
        See :data:`DEFAULT_DAMAGE_THRESHOLD`.
    recompute:
        ``graph -> labels`` callable used for from-scratch recomputes
        (missing initial labels, damage-threshold rebuilds).  Defaults
        to the serial :func:`~repro.core.tarjan.tarjan_scc`; the engine
        passes its warm Method-2 pipeline here so rebuilds on large
        graphs run at pipeline speed.
    """

    def __init__(
        self,
        delta: DeltaCSR,
        labels: Optional[np.ndarray] = None,
        *,
        damage_threshold: float = DEFAULT_DAMAGE_THRESHOLD,
        recompute=None,
    ) -> None:
        if not (0 < damage_threshold <= 1):
            raise ValueError("damage_threshold must be in (0, 1]")
        self._delta = delta
        self.damage_threshold = float(damage_threshold)
        self._recompute = (
            recompute if recompute is not None else tarjan_scc
        )
        self.stats = DynamicStats()
        n = delta.num_nodes
        if labels is None:
            labels = self._recompute(delta.snapshot())
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape[0] != n:
            raise ValueError(
                f"labels cover {labels.shape[0]} nodes, graph has {n}"
            )
        self._labels = rep_labels(labels)
        self._members = _group_members(self._labels)
        # pseudo-topological level per cid (dict: the cascade loops
        # read it once per visited condensation edge).
        self._level: Dict[int, int] = {}
        # condensation DAG keyed by stable cid, both directions:
        # cid -> {neighbor cid: number of graph edges between them},
        # with the rep <-> cid maps alongside.
        self._csucc: Dict[int, Dict[int, int]] = {}
        self._cpred: Dict[int, Dict[int, int]] = {}
        self._cid_of: Dict[int, int] = {}
        self._rep_of: Dict[int, int] = {}
        self._cid_next = 0
        self._rebuild_condensation()
        self._rebuild_levels()

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def delta(self) -> DeltaCSR:
        return self._delta

    @property
    def labels(self) -> np.ndarray:
        """The maintained label array (min-member representatives).

        A read-only view — the maintainer owns the storage.
        """
        view = self._labels.view()
        view.flags.writeable = False
        return view

    @property
    def num_components(self) -> int:
        return len(self._members)

    def members(self, label: int) -> np.ndarray:
        """Sorted member ids of the component labelled ``label``."""
        return self._members[int(label)]

    def level_of(self, label: int) -> int:
        """Pseudo-topological level of a component (by representative)."""
        return self._level[self._cid_of[int(label)]]

    # ------------------------------------------------------------------
    # Level index
    # ------------------------------------------------------------------
    def _rebuild_levels(self) -> None:
        """Longest-path (Kahn wave) levels of the whole condensation."""
        labels = self._labels
        reps = np.unique(labels)
        k = reps.shape[0]
        src, dst = self._delta.edge_array()
        ls, ld = labels[src], labels[dst]
        mask = ls != ld
        cs = np.searchsorted(reps, ls[mask])
        cd = np.searchsorted(reps, ld[mask])
        if cs.size:
            key = np.unique(cs * np.int64(k) + cd)
            cs, cd = key // k, key % k
        counts = np.bincount(cs, minlength=k).astype(np.int64)
        cindptr = np.r_[0, np.cumsum(counts)]
        indeg = np.bincount(cd, minlength=k).astype(np.int64)
        level = np.zeros(k, dtype=np.int64)
        frontier = np.flatnonzero(indeg == 0)
        while frontier.size:
            fcounts = counts[frontier]
            total = int(fcounts.sum())
            if total == 0:
                break
            starts = cindptr[frontier]
            cum = np.cumsum(fcounts)
            idx = np.arange(total, dtype=np.int64) + np.repeat(
                starts - (cum - fcounts), fcounts
            )
            targets = cd[idx]
            np.maximum.at(
                level, targets, np.repeat(level[frontier], fcounts) + 1
            )
            dec = np.bincount(targets, minlength=k)
            indeg -= dec
            frontier = np.flatnonzero((indeg == 0) & (dec > 0))
        cid_of = self._cid_of
        self._level = {
            cid_of[r]: l
            for r, l in zip(reps.tolist(), level.tolist())
        }

    def _successors(self, cid: int):
        """Condensation out-neighbor cids of component ``cid``."""
        return self._csucc.get(cid, _NO_NEIGHBORS)

    def _predecessors(self, cid: int):
        """Condensation in-neighbor cids of component ``cid``."""
        return self._cpred.get(cid, _NO_NEIGHBORS)

    def _recount_condensation(
        self,
    ) -> Tuple[Dict[int, Dict[int, int]], Dict[int, Dict[int, int]]]:
        """Count the condensation DAG from the merged view, keyed by
        *label* (not cid): ``label -> {neighbor label: edges}``."""
        labels = self._labels
        n = np.int64(labels.shape[0])
        src, dst = self._delta.edge_array()
        ls, ld = labels[src], labels[dst]
        mask = ls != ld
        key, counts = np.unique(
            ls[mask] * n + ld[mask], return_counts=True
        )
        succ: Dict[int, Dict[int, int]] = {}
        pred: Dict[int, Dict[int, int]] = {}
        for k, c in zip(key.tolist(), counts.tolist()):
            a, b = divmod(k, int(n))
            succ.setdefault(a, {})[b] = c
            pred.setdefault(b, {})[a] = c
        return succ, pred

    def _rebuild_condensation(self) -> None:
        """Recount the whole condensation DAG and reset every cid to
        its component's representative label."""
        self._csucc, self._cpred = self._recount_condensation()
        self._cid_of = {r: r for r in self._members}
        self._rep_of = dict(self._cid_of)
        self._cid_next = int(self._labels.shape[0])

    def _cadd(self, a: int, b: int) -> None:
        """One more graph edge between components ``a -> b``."""
        succ = self._csucc.setdefault(a, {})
        succ[b] = succ.get(b, 0) + 1
        pred = self._cpred.setdefault(b, {})
        pred[a] = pred.get(a, 0) + 1

    def _cdel(self, a: int, b: int) -> None:
        """One fewer graph edge between components ``a -> b``."""
        succ = self._csucc[a]
        succ[b] -= 1
        if not succ[b]:
            del succ[b]
        pred = self._cpred[b]
        pred[a] -= 1
        if not pred[a]:
            del pred[a]

    def _raise_levels(self, seeds: Iterable[Tuple[int, int]]) -> None:
        """Restore ``level[a] < level[b]`` along every condensation
        edge downstream of ``seeds`` (component, required-level) pairs.

        Standard cascade over the condensation index: a component
        below its requirement is raised and only the successors the
        raise actually disturbed (``level <= new level``) are
        enqueued — compliant subtrees are never touched.  Terminates
        because the condensation is acyclic at every call site and
        levels only grow.
        """
        level = self._level
        csucc = self._csucc
        visits = 0
        queue = deque(seeds)
        while queue:
            rep, req = queue.popleft()
            visits += 1
            if level[rep] >= req:
                continue
            level[rep] = req
            nxt = req + 1
            for s in csucc.get(rep, _NO_NEIGHBORS):
                if level[s] < nxt:
                    queue.append((s, nxt))
        self.stats.cascade_visits += visits

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, u: int, v: int) -> bool:
        """Insert edge ``u -> v``; True when the *labels* changed."""
        u, v = int(u), int(v)
        self.stats.inserts += 1
        if not self._delta.add_edge(u, v):
            self.stats.noops += 1
            return False
        lu, lv = int(self._labels[u]), int(self._labels[v])
        if lu == lv:
            self.stats.fast_inserts += 1
            return False
        cid_of = self._cid_of
        cu, cv = cid_of[lu], cid_of[lv]
        self._cadd(cu, cv)
        level = self._level
        limit = level[cu]
        low = level[cv]
        if limit < low:
            # level-compatible: a path Lv -> Lu would have to descend
            # through strictly ascending levels — impossible.
            self.stats.fast_inserts += 1
            return False
        # Interleaved bidirectional search for a Lv -> Lu path.  By
        # the invariant such a path ascends strictly, so it lies
        # entirely inside *both* windows: forward from Lv over
        # components with level <= level[Lu], backward from Lu over
        # components with level > level[Lv].  Alternating one hop per
        # side, the first flood to exhaust certifies "no cycle" at
        # the cost of the smaller affected region; a frontier contact
        # certifies a cycle.
        csucc, cpred = self._csucc, self._cpred
        forward = {cv}
        backward = {cu}
        fstack = [cv]
        bstack = [cu]
        cycle = False
        while fstack and bstack:
            c = fstack.pop()
            for s in csucc.get(c, _NO_NEIGHBORS):
                if s in backward:
                    # interrupted mid-scan: restack ``c`` so the
                    # completion pass below sees its remaining edges.
                    cycle = True
                    fstack.append(c)
                    break
                if s not in forward and level[s] <= limit:
                    forward.add(s)
                    fstack.append(s)
            if cycle:
                break
            c = bstack.pop()
            for p in cpred.get(c, _NO_NEIGHBORS):
                if p in forward:
                    cycle = True
                    bstack.append(c)
                    break
                if p not in backward and level[p] > low:
                    backward.add(p)
                    bstack.append(p)
            if cycle:
                break
        if not cycle:
            # no cycle; re-establish the invariant along the new edge.
            self.stats.searched_inserts += 1
            self._raise_levels([(cv, limit + 1)])
            return False
        # cycle: everything on a Lv -> Lu path collapses.  Finish the
        # cheaper flood, then restrict the opposite flood to it — the
        # intersection is exactly the set of on-path components.
        if len(forward) <= len(backward):
            while fstack:
                c = fstack.pop()
                for s in csucc.get(c, _NO_NEIGHBORS):
                    if s not in forward and level[s] <= limit:
                        forward.add(s)
                        fstack.append(s)
            merge_set = {cu}
            stack = [cu]
            while stack:
                c = stack.pop()
                for p in cpred.get(c, _NO_NEIGHBORS):
                    if p in forward and p not in merge_set:
                        merge_set.add(p)
                        stack.append(p)
        else:
            while bstack:
                c = bstack.pop()
                for p in cpred.get(c, _NO_NEIGHBORS):
                    if p not in backward and level[p] > low:
                        backward.add(p)
                        bstack.append(p)
            merge_set = {cv}
            stack = [cv]
            while stack:
                c = stack.pop()
                for s in csucc.get(c, _NO_NEIGHBORS):
                    if s in backward and s not in merge_set:
                        merge_set.add(s)
                        stack.append(s)
        rep_of = self._rep_of
        merge_reps = [rep_of[c] for c in merge_set]
        parts = [self._members.pop(r) for r in merge_reps]
        members = np.sort(np.concatenate(parts))
        new_rep = int(members[0])
        self._members[new_rep] = members
        self._labels[members] = new_rep
        # fold the merged components into the *densest* one's cid:
        # internal edges vanish, the satellites' external edges
        # repoint to the kept cid, and the kept component's own
        # external references are never touched — absorbing a
        # satellite into the giant costs O(satellite degree).
        keep = max(
            merge_set,
            key=lambda c: len(csucc.get(c, _NO_NEIGHBORS))
            + len(cpred.get(c, _NO_NEIGHBORS)),
        )
        others = [c for c in merge_set if c != keep]
        ksucc = csucc.setdefault(keep, {})
        kpred = cpred.setdefault(keep, {})
        new_succs: List[int] = []
        new_preds: List[int] = []
        for c in others:
            for t, k in csucc.pop(c, _NO_NEIGHBORS).items():
                if t in merge_set:
                    continue
                if t in ksucc:
                    ksucc[t] += k
                else:
                    ksucc[t] = k
                    new_succs.append(t)
                pt = cpred[t]
                pt[keep] = pt.get(keep, 0) + k
                del pt[c]
            for s, k in cpred.pop(c, _NO_NEIGHBORS).items():
                if s in merge_set:
                    continue
                if s in kpred:
                    kpred[s] += k
                else:
                    kpred[s] = k
                    new_preds.append(s)
                ss = csucc[s]
                ss[keep] = ss.get(keep, 0) + k
                del ss[c]
        for c in others:
            ksucc.pop(c, None)
            kpred.pop(c, None)
        # rename the kept cid to the merged component's label
        for c in others:
            cid_of.pop(rep_of.pop(c))
            level.pop(c)
        cid_of.pop(rep_of[keep])
        rep_of[keep] = new_rep
        cid_of[new_rep] = keep
        # the kept level already dominates its old predecessors; only
        # predecessors gained from the fold can push it further, and
        # only successors it gained can then sit too low.
        keep_level = level[keep]
        new_level = keep_level
        for s in new_preds:
            if level[s] >= new_level:
                new_level = level[s] + 1
        self.stats.merges += 1
        self.stats.merged_components += len(merge_set)
        if new_level == keep_level:
            seeds = [
                (t, new_level + 1)
                for t in new_succs
                if level[t] <= new_level
            ]
        else:
            level[keep] = new_level
            seeds = [
                (t, new_level + 1)
                for t in ksucc
                if level[t] <= new_level
            ]
        self._raise_levels(seeds)
        return True

    def delete(self, u: int, v: int) -> bool:
        """Delete edge ``u -> v``; True when the *labels* changed."""
        u, v = int(u), int(v)
        self.stats.deletes += 1
        if not self._delta.remove_edge(u, v):
            self.stats.noops += 1
            return False
        lu, lv = int(self._labels[u]), int(self._labels[v])
        if lu != lv:
            # losing a condensation edge only removes constraints.
            self._cdel(self._cid_of[lu], self._cid_of[lv])
            self.stats.cross_deletes += 1
            return False
        if u == v:
            self.stats.intact_deletes += 1
            return False
        members = self._members[lu]
        if self._reaches_within(u, v, members):
            # intact certificate: u still reaches v inside the
            # component, so every old path can be patched around the
            # lost edge and the partition stands.
            self.stats.intact_deletes += 1
            return False
        if members.size > self.damage_threshold * self._labels.shape[0]:
            self.stats.rebuilds += 1
            self.rebuild()
            return True
        self._split(lu, members)
        return True

    def apply(
        self,
        inserts: Sequence[Tuple[int, int]] = (),
        deletes: Sequence[Tuple[int, int]] = (),
    ) -> bool:
        """Apply a batch (inserts first); True when labels changed."""
        changed = False
        for u, v in inserts:
            changed |= self.insert(u, v)
        for u, v in deletes:
            changed |= self.delete(u, v)
        return changed

    def rebuild(self) -> None:
        """Recompute every label and level from the merged snapshot."""
        self._labels = rep_labels(
            np.asarray(
                self._recompute(self._delta.snapshot()), dtype=np.int64
            )
        )
        self._members = _group_members(self._labels)
        self._rebuild_condensation()
        self._rebuild_levels()

    # ------------------------------------------------------------------
    # Delete internals
    # ------------------------------------------------------------------
    def _reaches_within(
        self, source: int, target: int, members: np.ndarray
    ) -> bool:
        """Restricted bidirectional BFS ``source -> target`` inside
        ``members`` over the merged view, exiting on first contact.

        Always expands the smaller frontier — forward from ``source``
        or backward from ``target`` — so a positive answer costs two
        meet-in-the-middle balls instead of one sweep of the whole
        component (decisive on hub-heavy graphs, where both endpoints
        sit a couple of hops from the core)."""
        n = self._labels.shape[0]
        member = np.zeros(n, dtype=bool)
        member[members] = True
        fwd_seen = np.zeros(n, dtype=bool)
        bwd_seen = np.zeros(n, dtype=bool)
        fwd_seen[source] = True
        bwd_seen[target] = True
        fwd = np.array([source], dtype=np.int64)
        bwd = np.array([target], dtype=np.int64)
        fwd_view = self._delta.forward_view()
        bwd_view = self._delta.backward_view()
        while fwd.size and bwd.size:
            if fwd.size <= bwd.size:
                view, frontier = fwd_view, fwd
                seen, other = fwd_seen, bwd_seen
            else:
                view, frontier = bwd_view, bwd
                seen, other = bwd_seen, fwd_seen
            nxt = delta_expand_frontier(*view, frontier, unique=True)
            if nxt.size:
                nxt = nxt[member[nxt] & ~seen[nxt]]
            if nxt.size == 0:
                return False
            if bool(other[nxt].any()):
                return True
            seen[nxt] = True
            if seen is fwd_seen:
                fwd = nxt
            else:
                bwd = nxt
        return False

    def _split(self, rep: int, members: np.ndarray) -> None:
        """FW-BW recompute restricted to one broken component."""
        level = self._level
        cid_of, rep_of = self._cid_of, self._rep_of
        old_cid = cid_of.pop(rep)
        old_level = level.pop(old_cid)
        del rep_of[old_cid]
        sub, mapping = self._delta.induced_subgraph(members)
        sublabels = _peel_scc(sub)
        del self._members[rep]
        new_labels = mapping[sublabels]
        self._labels[mapping] = new_labels
        groups = _group_members(sublabels)
        ranks = _condensation_ranks(sub, sublabels)
        # every part gets a fresh cid — the old cid (and external
        # references to it) die in the recount below.
        for sub_rep, sub_members in groups.items():
            part = mapping[sub_members]
            g_rep = int(mapping[sub_rep])
            self._members[g_rep] = part
            c = self._cid_next
            self._cid_next = c + 1
            cid_of[g_rep] = c
            rep_of[c] = g_rep
            level[c] = old_level + ranks[sub_rep]
        self._recount_after_split(old_cid, members)
        seeds: List[Tuple[int, int]] = []
        for sub_rep in groups:
            c = cid_of[int(mapping[sub_rep])]
            lvl = level[c]
            seeds.extend(
                (s, lvl + 1)
                for s in self._successors(c)
                if level[s] <= lvl
            )
        self.stats.splits += 1
        self.stats.split_components += len(groups)
        self._raise_levels(seeds)

    def _recount_after_split(
        self, old_cid: int, members: np.ndarray
    ) -> None:
        """Patch the condensation index after a component split.

        The old cid's adjacency (and every external reference to it)
        is dropped, then the edges incident to the old member set are
        recounted from the merged view — O(component edges), the same
        order as the split recompute itself.
        """
        for t in self._csucc.pop(old_cid, _NO_NEIGHBORS):
            self._cpred[t].pop(old_cid, None)
        for s in self._cpred.pop(old_cid, _NO_NEIGHBORS):
            self._csucc[s].pop(old_cid, None)
        labels = self._labels
        n = np.int64(labels.shape[0])
        in_members = np.zeros(int(n), dtype=bool)
        in_members[members] = True
        # edges out of the old member set (covers part -> part too)
        targets, sources = delta_expand_frontier(
            *self._delta.forward_view(), members, return_sources=True
        )
        pairs = []
        if targets.size:
            ls, ld = labels[sources], labels[targets]
            mask = ls != ld
            pairs.append((ls[mask], ld[mask]))
        # edges into the old member set from external components only
        # (member-to-member edges were counted by the forward pass)
        origins, seats = delta_expand_frontier(
            *self._delta.backward_view(), members, return_sources=True
        )
        if origins.size:
            ext = ~in_members[origins]
            ls, ld = labels[origins[ext]], labels[seats[ext]]
            mask = ls != ld
            pairs.append((ls[mask], ld[mask]))
        cid_of = self._cid_of
        for ls, ld in pairs:
            key, counts = np.unique(ls * n + ld, return_counts=True)
            for k, c in zip(key.tolist(), counts.tolist()):
                a, b = divmod(k, int(n))
                ca, cb = cid_of[a], cid_of[b]
                succ = self._csucc.setdefault(ca, {})
                succ[cb] = succ.get(cb, 0) + c
                pred = self._cpred.setdefault(cb, {})
                pred[ca] = pred.get(ca, 0) + c

    # ------------------------------------------------------------------
    # Verification (tests / self-audit)
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Cross-check the maintained labels against a from-scratch
        serial recompute of the merged snapshot; raises on divergence."""
        fresh = rep_labels(tarjan_scc(self._delta.snapshot()))
        if not np.array_equal(fresh, self._labels):
            bad = int(np.flatnonzero(fresh != self._labels)[0])
            raise AssertionError(
                f"dynamic labels diverged from recompute at node {bad}: "
                f"maintained {int(self._labels[bad])}, "
                f"fresh {int(fresh[bad])}"
            )
        # cid map hygiene: a bijection between components and cids
        cid_of, rep_of = self._cid_of, self._rep_of
        if set(cid_of) != set(self._members) or len(rep_of) != len(
            cid_of
        ) or any(rep_of[c] != r for r, c in cid_of.items()):
            raise AssertionError(
                "rep <-> cid maps diverged from the component set"
            )
        # the incremental condensation counters must equal a recount
        # (translated back to label space through the cid maps)
        strip = lambda d: {a: nbrs for a, nbrs in d.items() if nbrs}
        have_succ = {
            rep_of[a]: {rep_of[b]: k for b, k in nbrs.items()}
            for a, nbrs in strip(self._csucc).items()
        }
        have_pred = {
            rep_of[a]: {rep_of[b]: k for b, k in nbrs.items()}
            for a, nbrs in strip(self._cpred).items()
        }
        fresh_succ, fresh_pred = self._recount_condensation()
        if have_succ != strip(fresh_succ) or have_pred != strip(
            fresh_pred
        ):
            raise AssertionError(
                "condensation index diverged from a recount"
            )
        # level hygiene: exactly one entry per component, and the
        # pseudo-topological invariant along every condensation edge
        if set(self._level) != set(rep_of):
            raise AssertionError(
                "level index keys diverged from the component set"
            )
        for a, nbrs in self._csucc.items():
            la = self._level[a]
            for b in nbrs:
                if la >= self._level[b]:
                    raise AssertionError(
                        f"level invariant broken on condensation "
                        f"edge {rep_of[a]} -> {rep_of[b]}"
                    )


def _peel_scc(sub: CSRGraph) -> np.ndarray:
    """SCC labels of ``sub`` by multi-source FW-BW peeling.

    Partitions are processed as colour-confined waves — up to
    :data:`~repro.kernels.MS_MAX_WAVES` per
    :func:`~repro.core.recurfwbw.multi_source_reach` sweep, pivots
    pinned to the minimum node id for determinism.  Each wave's FW∧BW
    intersection is one SCC (labelled by its minimum member); the
    FW-only / BW-only / unreached residues become fresh partitions
    until everything is labelled.  Returns min-member labels.
    """
    n = sub.num_nodes
    labels = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return labels
    color = np.zeros(n, dtype=np.int64)
    next_color = 1
    parts: deque = deque([(0, np.arange(n, dtype=np.int64))])
    indptr, indices = sub.indptr, sub.indices
    in_indptr, in_indices = sub.in_indptr, sub.in_indices
    while parts:
        live: List[Tuple[int, np.ndarray]] = []
        while parts and len(live) < MS_MAX_WAVES:
            c, nodes = parts.popleft()
            if nodes.size == 1:
                labels[nodes[0]] = nodes[0]
            else:
                live.append((c, nodes))
        if not live:
            continue
        colors = np.array([c for c, _ in live], dtype=np.int64)
        pivots = np.array([int(nodes[0]) for _, nodes in live], dtype=np.int64)
        bits, fw, bw = multi_source_reach(
            indptr, indices, in_indptr, in_indices, color, colors, pivots
        )
        for k, (c, nodes) in enumerate(live):
            cat = ms_fwbw_intersect(
                nodes, np.repeat(bits[k], nodes.size), fw, bw
            )
            scc = nodes[cat == MS_SCC]
            labels[scc] = scc[0]
            for chunk_cat in (MS_FW_ONLY, MS_BW_ONLY, MS_UNREACHED):
                chunk = nodes[cat == chunk_cat]
                if chunk.size:
                    color[chunk] = next_color
                    parts.append((next_color, chunk))
                    next_color += 1
    return labels


def _condensation_ranks(
    sub: CSRGraph, sublabels: np.ndarray
) -> Dict[int, int]:
    """Longest-path rank of every component of ``sub``'s condensation
    (0 for sources), keyed by representative label."""
    reps = np.unique(sublabels)
    k = reps.shape[0]
    src, dst = sub.edge_array()
    ls, ld = sublabels[src], sublabels[dst]
    mask = ls != ld
    cs = np.searchsorted(reps, ls[mask])
    cd = np.searchsorted(reps, ld[mask])
    if cs.size:
        key = np.unique(cs * np.int64(k) + cd)
        cs, cd = key // k, key % k
    counts = np.bincount(cs, minlength=k).astype(np.int64)
    cindptr = np.r_[0, np.cumsum(counts)]
    indeg = np.bincount(cd, minlength=k).astype(np.int64)
    rank = np.zeros(k, dtype=np.int64)
    frontier = np.flatnonzero(indeg == 0)
    while frontier.size:
        fcounts = counts[frontier]
        total = int(fcounts.sum())
        if total == 0:
            break
        starts = cindptr[frontier]
        cum = np.cumsum(fcounts)
        idx = np.arange(total, dtype=np.int64) + np.repeat(
            starts - (cum - fcounts), fcounts
        )
        targets = cd[idx]
        np.maximum.at(
            rank, targets, np.repeat(rank[frontier], fcounts) + 1
        )
        dec = np.bincount(targets, minlength=k)
        indeg -= dec
        frontier = np.flatnonzero((indeg == 0) & (dec > 0))
    return {int(reps[i]): int(rank[i]) for i in range(k)}
