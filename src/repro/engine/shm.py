"""Shared-memory plumbing for the process executors.

Before this module existed, :mod:`repro.runtime.mp_backend` and
:mod:`repro.runtime.supervisor` each owned a copy of the same three
pieces of setup: creating shared-memory mirrors of the
:class:`~repro.core.state.SCCState` arrays, arming the fork-inherited
worker context, and guaranteeing the segments are unlinked on every
exit path.  Both executors (and the warm :class:`~repro.engine.session.
GraphSession` pools) now build on this one module.

Two guarantees the helpers here uphold:

* **no leaked segments** — every segment is appended to its registry
  *before* anything else can fail, and :meth:`SharedStateMirror.close`
  unlinks whatever was actually created, so a crash half-way through
  construction (or mid-run) never leaves a segment behind until
  reboot;
* **one worker context** — :data:`WORKER_CTX` is the single
  fork-inherited channel to worker processes.  It is armed immediately
  before a pool forks and cleared right after (workers keep their
  inherited copy), so concurrent arming bugs surface as an empty
  context, not as cross-talk between runs.
"""

from __future__ import annotations

import multiprocessing as mp
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

__all__ = [
    "WORKER_CTX",
    "shm_array",
    "SharedStateMirror",
    "arm_worker_context",
    "disarm_worker_context",
]

#: Fork-inherited worker context (set immediately before fork).  The
#: historical name ``_WORKER_CTX`` is re-exported by
#: :mod:`repro.runtime.mp_backend` for backward compatibility; both
#: names refer to this one dict object.
WORKER_CTX: dict = {}


def shm_array(shape, dtype, init: np.ndarray, registry: list) -> np.ndarray:
    """Create a shared segment backing a copy of ``init``.

    The segment is appended to ``registry`` *before* anything else can
    fail, so the caller's ``finally`` block always sees (and unlinks)
    every segment that was actually created — an exception between
    creation and registration would otherwise leak it until reboot.
    """
    shm = shared_memory.SharedMemory(create=True, size=max(init.nbytes, 1))
    registry.append(shm)
    arr = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
    arr[:] = init
    return arr


class SharedStateMirror:
    """Shared-memory mirrors of the SCCState mutable arrays + counters.

    One mirror serves many runs over the same graph: the segments are
    sized once for ``num_nodes`` and reused — :meth:`load` copies a
    state's arrays in before a phase, :meth:`flush` copies the results
    back after it.  Worker processes map the same segments through the
    fork-inherited context, so a warm pool keeps working across runs
    without re-arming.
    """

    ARRAYS = ("color", "mark", "labels", "phase_of")

    def __init__(self, num_nodes: int) -> None:
        n = int(num_nodes)
        self.num_nodes = n
        self._shms: list = []
        self._closed = False
        try:
            self.color = shm_array(
                (n,), np.int64, np.zeros(n, np.int64), self._shms
            )
            self.mark = shm_array(
                (n,), np.bool_, np.zeros(n, np.bool_), self._shms
            )
            self.labels = shm_array(
                (n,), np.int64, np.zeros(n, np.int64), self._shms
            )
            self.phase_of = shm_array(
                (n,), np.int8, np.zeros(n, np.int8), self._shms
            )
            #: SCC id allocator shared with the workers.
            self.scc_counter = mp.Value("q", 0)
            #: colour allocator shared with the workers.
            self.color_counter = mp.Value("q", 0)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    def load(self, state) -> None:
        """Copy ``state``'s mutable arrays + counters into the mirror."""
        if self._closed:
            raise RuntimeError("mirror is closed")
        if state.num_nodes != self.num_nodes:
            raise ValueError(
                f"state has {state.num_nodes} nodes but this mirror was "
                f"sized for {self.num_nodes}"
            )
        self.color[:] = state.color
        self.mark[:] = state.mark
        self.labels[:] = state.labels
        self.phase_of[:] = state.phase_of
        self.scc_counter.value = state.num_sccs
        self.color_counter.value = int(state.color_watermark())

    def flush(self, state) -> None:
        """Copy the mirror (mutated by workers) back into ``state``."""
        if self._closed:
            raise RuntimeError("mirror is closed")
        state.color[:] = self.color
        state.mark[:] = self.mark
        state.labels[:] = self.labels
        state.phase_of[:] = self.phase_of
        state.sync_counters(
            int(self.scc_counter.value), int(self.color_counter.value)
        )

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close and unlink every segment (idempotent, never raises for
        segments that are already gone)."""
        if self._closed:
            return
        self._closed = True
        for shm in self._shms:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._shms.clear()

    def __enter__(self) -> "SharedStateMirror":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def arm_worker_context(
    graph,
    mirror: SharedStateMirror,
    *,
    cost,
    phase_id: int,
    faults=None,
    kernel_backend: Optional[str] = None,
) -> None:
    """Populate :data:`WORKER_CTX` for an imminent pool fork.

    The read-only CSR ``graph`` rides along copy-on-write; the mutable
    arrays and counters come from ``mirror``'s shared segments; the
    kernel backend pins the parent's resolved choice so workers stay
    honest even if the pool ever re-execs instead of forking.
    """
    if kernel_backend is None:
        from ..kernels import get_backend

        kernel_backend = get_backend()
    WORKER_CTX.clear()
    WORKER_CTX.update(
        graph=graph,
        color=mirror.color,
        mark=mirror.mark,
        labels=mirror.labels,
        phase_of=mirror.phase_of,
        scc_counter=mirror.scc_counter,
        color_counter=mirror.color_counter,
        cost=cost,
        phase_id=phase_id,
        faults=faults,
        kernel_backend=kernel_backend,
    )


def disarm_worker_context() -> None:
    """Clear :data:`WORKER_CTX` (workers keep their forked copy)."""
    WORKER_CTX.clear()
