"""Worker-pool lifecycle: the one place fork pools are constructed.

Both process executors (plain and supervised) and the warm
:class:`~repro.engine.session.GraphSession` pools share this wrapper
around ``multiprocessing.Pool``:

* the worker context is armed by an ``arm`` callback *immediately*
  before every fork (initial spawn and every rebuild), and disarmed
  right after — workers keep their inherited copy, the parent's global
  stays clean;
* liveness inspection (:meth:`dead_workers`) distinguishes worker
  death from task hang after a deadline expires;
* a condemned pool is replaced wholesale by :meth:`rebuild` — a hung
  worker could keep mutating shared memory, so the supervisor never
  reuses a pool it has given up on;
* :meth:`terminate` is idempotent and safe on every exit path.

``spawns`` counts forks over the pool's lifetime; the session layer
uses it to prove warm runs pay no respawn.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Callable, Optional

from .shm import disarm_worker_context

__all__ = ["WorkerPool", "fork_available"]


def fork_available() -> bool:
    """True when the 'fork' start method exists (POSIX)."""
    return "fork" in mp.get_all_start_methods()


class WorkerPool:
    """A rebuildable fork pool with context arming and liveness checks."""

    def __init__(
        self,
        num_workers: int,
        *,
        arm: Optional[Callable[[], None]] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if not fork_available():  # pragma: no cover - non-POSIX only
            raise RuntimeError(
                "process backends require the 'fork' start method"
            )
        self.num_workers = num_workers
        self._arm = arm
        self._ctx = mp.get_context("fork")
        self._pool: Optional[mp.pool.Pool] = None
        #: total forks over this pool's lifetime (1 after start()).
        self.spawns = 0

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._pool is not None

    def start(self) -> "WorkerPool":
        """Fork the workers (no-op when already running)."""
        if self._pool is None:
            self._fork()
        return self

    def _fork(self) -> None:
        if self._arm is not None:
            self._arm()
        try:
            self._pool = self._ctx.Pool(processes=self.num_workers)
            self.spawns += 1
        finally:
            # Workers inherited their copy at fork; the parent-side
            # global must not leak into unrelated code.
            if self._arm is not None:
                disarm_worker_context()

    # ------------------------------------------------------------------
    def apply_async(self, fn, args=()):
        if self._pool is None:
            raise RuntimeError("pool is not running (call start())")
        return self._pool.apply_async(fn, args)

    def dead_workers(self) -> int:
        """Count dead worker processes (0 when the pool is down)."""
        if self._pool is None:
            return 0
        procs = getattr(self._pool, "_pool", None) or []
        return sum(1 for p in procs if not p.is_alive())

    def worker_pids(self) -> tuple:
        """PIDs of the live workers (the governor's RSS accounting)."""
        if self._pool is None:
            return ()
        procs = getattr(self._pool, "_pool", None) or []
        return tuple(p.pid for p in procs if p.is_alive() and p.pid)

    def rss_bytes(self) -> int:
        """Total resident-set bytes of the live workers.

        Memory pinned by a warm pool lives in the *children*, where
        the parent's ``/proc/self/statm`` never sees it; the governor
        adds this to its own RSS so a pool-heavy process still honours
        one budget.  Workers that vanish mid-scan count as 0.
        """
        from ..ioutil import process_rss_bytes

        return sum(
            process_rss_bytes(pid) or 0 for pid in self.worker_pids()
        )

    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Condemn the current workers and fork a fresh set."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._fork()

    def terminate(self) -> None:
        """Tear the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.terminate()
