"""Warm graph sessions: pay the setup once, run many times.

The paper's Methods 1 & 2 are one-shot pipelines, but a serving system
repeats them against the same graph under different methods, seeds and
executors.  The expensive work is all *per-graph*, not *per-run*:
loading the edge list, building the transpose CSR, validating the
structure, mirroring the mutable arrays into shared memory, and
forking a worker pool.  A :class:`GraphSession` owns exactly that
per-graph state, keyed by a CRC fingerprint of the CSR arrays, so the
second run on a session pays none of it (measured by
``benchmarks/bench_engine_serving.py`` into ``BENCH_engine.json``).

What a session caches:

* the :class:`~repro.graph.csr.CSRGraph` itself (load once);
* the transpose CSR (built eagerly by :meth:`warmup`, reused by every
  backward traversal and by the process executors' pre-fork build);
* the out/in effective-degree arrays (trim seeds);
* the structural validation verdict (:func:`repro.graph.validate.
  validate_graph` runs at most once per session);
* a :class:`~repro.engine.shm.SharedStateMirror` sized for the graph;
* a warm forked :class:`~repro.engine.pool.WorkerPool`, respawned only
  when the armed configuration (worker count, kernel backend, fault
  plan) actually changes.

:class:`SessionStats` records where the setup time went and how often
each artifact was reused — the warm-vs-cold amortization evidence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..graph import CSRGraph
from ..ioutil import crc32_chunks
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from .pool import WorkerPool, fork_available
from .shm import SharedStateMirror, arm_worker_context

__all__ = ["graph_fingerprint", "SessionStats", "GraphSession"]


def graph_fingerprint(g: CSRGraph) -> int:
    """CRC32 fingerprint of a graph's CSR arrays.

    The session cache key, and the identity recorded into run
    checkpoints (:mod:`repro.runtime.lifecycle`) so a resume against
    different data is refused rather than silently wrong.
    """
    return crc32_chunks(
        np.int64(g.num_nodes).tobytes(),
        g.indptr.tobytes(),
        g.indices.tobytes(),
    )


@dataclass
class SessionStats:
    """Where one session's setup time went, and what got reused."""

    graph_load_seconds: float = 0.0
    transpose_seconds: float = 0.0
    degrees_seconds: float = 0.0
    validate_seconds: float = 0.0
    pool_spawn_seconds: float = 0.0
    #: worker-pool forks (1 for a warm session serving many runs).
    pool_spawns: int = 0
    #: runs served by this session.
    runs: int = 0
    #: runs that reused every cached artifact (no respawn, no rebuild).
    warm_runs: int = 0
    #: cache hits on already-built artifacts.
    transpose_reuses: int = 0
    pool_reuses: int = 0
    #: integrity-tier accounting (0 when checksums are off).
    integrity_verifications: int = 0
    integrity_failures: int = 0

    def setup_seconds(self) -> float:
        """Total one-time setup paid so far (load + derive + fork)."""
        return (
            self.graph_load_seconds
            + self.transpose_seconds
            + self.degrees_seconds
            + self.validate_seconds
            + self.pool_spawn_seconds
        )

    def to_dict(self) -> dict:
        return {
            "graph_load_seconds": self.graph_load_seconds,
            "transpose_seconds": self.transpose_seconds,
            "degrees_seconds": self.degrees_seconds,
            "validate_seconds": self.validate_seconds,
            "pool_spawn_seconds": self.pool_spawn_seconds,
            "setup_seconds": self.setup_seconds(),
            "pool_spawns": self.pool_spawns,
            "runs": self.runs,
            "warm_runs": self.warm_runs,
            "transpose_reuses": self.transpose_reuses,
            "pool_reuses": self.pool_reuses,
            "integrity_verifications": self.integrity_verifications,
            "integrity_failures": self.integrity_failures,
        }


class GraphSession:
    """One graph, loaded once, served many times.

    Sessions are usually obtained through :meth:`repro.engine.Engine.
    session` (which deduplicates them by fingerprint); constructing one
    directly is fine for library use.  A session owns OS resources
    (shared-memory segments, worker processes) once a process backend
    has run — :meth:`close` releases them, and the session is a context
    manager.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        name: Optional[str] = None,
        cost: CostModel = DEFAULT_COST_MODEL,
        load_seconds: float = 0.0,
        integrity: bool = False,
    ) -> None:
        self._graph = graph
        self.name = name
        self.cost = cost
        self.fingerprint = graph_fingerprint(graph)
        #: monotonically increasing mutation epoch.  0 for the frozen
        #: graph the session was created with; bumped by
        #: :meth:`mark_mutated` after each applied update batch.  The
        #: ``fingerprint`` stays the cache identity; ``(fingerprint,
        #: version)`` — :attr:`versioned_fingerprint` — names the exact
        #: graph state certificates and checkpoints were taken against.
        self.version = 0
        self._delta = None
        #: the attached :class:`~repro.engine.dynamic.DynamicSCC`
        #: maintainer, once :meth:`repro.engine.Engine.update` has
        #: promoted the session to mutable.
        self.dynamic = None
        self.stats = SessionStats(graph_load_seconds=load_seconds)
        self._degrees: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._validated = False
        self._mirror: Optional[SharedStateMirror] = None
        self._pool: Optional[WorkerPool] = None
        self._pool_signature: Optional[tuple] = None
        self._closed = False
        self.checksums = None
        if integrity:
            from ..integrity import ChecksummedArrays

            self.checksums = ChecksummedArrays()
            self.checksums.seal("indptr", graph.indptr)
            self.checksums.seal("indices", graph.indices)
            if graph._in_indptr is not None:
                self.checksums.seal("in_indptr", graph._in_indptr)
                self.checksums.seal("in_indices", graph._in_indices)

    # -- mutable graph state --------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        """The session's current graph.

        Immutable sessions return the graph they were created with;
        mutable sessions return the merged snapshot of their delta
        overlay (cached by the overlay until the next mutation), so
        every run against the session sees the live edge set.
        """
        if self._delta is not None:
            return self._delta.snapshot()
        return self._graph

    @property
    def mutable(self) -> bool:
        """True once :meth:`make_mutable` attached a delta overlay."""
        return self._delta is not None

    @property
    def delta(self):
        """The :class:`~repro.graph.delta.DeltaCSR` overlay, if any."""
        return self._delta

    @property
    def versioned_fingerprint(self) -> Tuple[int, int]:
        """``(fingerprint, version)`` — the exact graph-state identity."""
        return (self.fingerprint, self.version)

    def make_mutable(self, *, compact_ratio: Optional[float] = None):
        """Attach (once) and return the session's delta overlay.

        The base graph stays frozen underneath; updates land in the
        overlay's edge log and :attr:`graph` switches to serving the
        merged snapshot.  ``compact_ratio`` only applies on the first
        call (the overlay keeps its configuration afterwards).
        """
        self._check_open()
        if self._delta is None:
            from ..graph.delta import DEFAULT_COMPACT_RATIO, DeltaCSR

            self._delta = DeltaCSR(
                self._graph,
                compact_ratio=(
                    compact_ratio
                    if compact_ratio is not None
                    else DEFAULT_COMPACT_RATIO
                ),
            )
        return self._delta

    def mark_mutated(self) -> int:
        """Advance the mutation epoch after an applied update batch.

        Invalidates every artifact derived from the pre-mutation
        arrays: cached degrees, the structural-validation verdict, and
        the forked worker pool (its workers inherited the old graph
        copy-on-write).  The shared mirror survives — it is sized by
        node count, which updates never change.  Returns the new
        version.
        """
        self._check_open()
        if self._delta is None:
            raise RuntimeError("session is not mutable")
        self.version += 1
        self._degrees = None
        self._validated = False
        self.release_pool()
        return self.version

    def reseal_integrity(self) -> None:
        """Re-seal the integrity sidecars over the mutated arrays.

        Mutable sessions seal the *delta state* — base CSR (both
        directions), tombstone masks, and the flattened add-log — so a
        bit flip landing in any of them between updates is caught at
        the next borrow.  No-op when checksums are off.
        """
        if self.checksums is None:
            return
        from ..integrity import ChecksummedArrays

        self.checksums = ChecksummedArrays()
        for name, arr in self.integrity_arrays().items():
            self.checksums.seal(name, arr)

    # -- cached derived artifacts ---------------------------------------
    def ensure_transpose(self) -> None:
        """Build (and time) the transpose CSR once; later calls hit the
        cache on the graph object."""
        self._check_open()
        if self.graph._in_indptr is not None:
            self.stats.transpose_reuses += 1
            return
        t0 = time.perf_counter()
        self.graph.in_indptr
        self.stats.transpose_seconds += time.perf_counter() - t0
        if self.checksums is not None and self._delta is None:
            self.checksums.seal("in_indptr", self.graph._in_indptr)
            self.checksums.seal("in_indices", self.graph._in_indices)

    def effective_degrees(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(out_degrees, in_degrees)`` of the full graph."""
        self._check_open()
        if self._degrees is None:
            t0 = time.perf_counter()
            self.ensure_transpose()
            self._degrees = (
                self.graph.out_degrees(),
                self.graph.in_degrees(),
            )
            self.stats.degrees_seconds += time.perf_counter() - t0
            if self.checksums is not None and self._delta is None:
                self.checksums.seal("out_degrees", self._degrees[0])
                self.checksums.seal("in_degrees", self._degrees[1])
        return self._degrees

    # -- integrity ------------------------------------------------------
    def integrity_arrays(self) -> dict:
        """Name -> array for every sealable artifact materialized so
        far (the ``corrupt`` fault kind targets these same names)."""
        if self._delta is not None:
            fwd = self._delta.forward_view()
            bwd = self._delta.backward_view()
            return {
                "indptr": fwd[0],
                "indices": fwd[1],
                "tomb": fwd[2],
                "add_indptr": fwd[3],
                "add_indices": fwd[4],
                "in_indptr": bwd[0],
                "in_indices": bwd[1],
                "tomb_in": bwd[2],
                "add_in_indptr": bwd[3],
                "add_in_indices": bwd[4],
            }
        arrays = {
            "indptr": self.graph.indptr,
            "indices": self.graph.indices,
        }
        if self.graph._in_indptr is not None:
            arrays["in_indptr"] = self.graph._in_indptr
            arrays["in_indices"] = self.graph._in_indices
        if self._degrees is not None:
            arrays["out_degrees"] = self._degrees[0]
            arrays["in_degrees"] = self._degrees[1]
        return arrays

    def verify_integrity(self, *, context: str = "") -> int:
        """Verify every sealed session array against its sidecar.

        No-op (returns 0) when checksums are off.  Raises
        :class:`~repro.errors.IntegrityError` on the first mismatch;
        the failure is counted so a quarantined session's stats still
        tell the story after it is evicted.
        """
        if self.checksums is None:
            return 0
        self._check_open()
        try:
            checked = self.checksums.verify_all(
                self.integrity_arrays(), context=context
            )
        except Exception:
            self.stats.integrity_failures += 1
            raise
        self.stats.integrity_verifications += checked
        return checked

    def validate(self) -> None:
        """Structural validation, at most once per session."""
        self._check_open()
        if self._validated:
            return
        from ..graph.validate import validate_graph

        t0 = time.perf_counter()
        validate_graph(self.graph)
        self.stats.validate_seconds += time.perf_counter() - t0
        self._validated = True

    def warmup(
        self, *, processes: bool = False, num_workers: int = 2
    ) -> "GraphSession":
        """Eagerly pay the setup this session would otherwise pay on its
        first run: transpose, degrees, and (optionally) the worker pool."""
        self.ensure_transpose()
        self.effective_degrees()
        if processes and fork_available():
            self.executor_resources(num_workers=num_workers)
        return self

    # -- warm executor resources ----------------------------------------
    def executor_resources(
        self,
        *,
        num_workers: int = 2,
        faults=None,
        kernel_backend: Optional[str] = None,
    ) -> Tuple[SharedStateMirror, WorkerPool]:
        """The session's shared mirror and warm pool, (re)armed for the
        requested configuration.

        The pool persists across runs; it is respawned only when the
        fork-inherited configuration changes — a different worker
        count, kernel backend, or fault plan.  Everything else a run
        varies (method, seed, queue contents) flows through the shared
        mirror, which workers re-read on every task.
        """
        self._check_open()
        from ..core.state import PHASE_RECUR
        from ..kernels import get_backend

        if kernel_backend is None:
            kernel_backend = get_backend()
        self.ensure_transpose()  # workers must inherit it copy-on-write
        if self._mirror is None:
            self._mirror = SharedStateMirror(self.graph.num_nodes)
        signature = (num_workers, kernel_backend, faults)
        if (
            self._pool is not None
            and self._pool.alive  # a condemned pool is replaced
            and signature == self._pool_signature
        ):
            self.stats.pool_reuses += 1
            return self._mirror, self._pool
        if self._pool is not None:
            self._pool.terminate()
            self._pool = None

        mirror = self._mirror

        def arm() -> None:
            arm_worker_context(
                self.graph,
                mirror,
                cost=self.cost,
                phase_id=PHASE_RECUR,
                faults=faults,
                kernel_backend=kernel_backend,
            )

        pool = WorkerPool(num_workers, arm=arm)
        t0 = time.perf_counter()
        pool.start()
        self.stats.pool_spawn_seconds += time.perf_counter() - t0
        self.stats.pool_spawns += 1
        self._pool = pool
        self._pool_signature = signature
        return mirror, pool

    @property
    def pool(self) -> Optional[WorkerPool]:
        return self._pool

    def release_pool(self) -> bool:
        """Condemn and tear down the warm pool (keep everything else).

        The memory governor's cheapest pressure-relief step: the next
        process-backed run pays one respawn, but the graph, transpose
        and mirror stay warm.  Returns True when a pool was released.
        """
        if self._pool is None:
            return False
        self._pool.terminate()
        self._pool = None
        self._pool_signature = None
        return True

    def estimated_bytes(self) -> int:
        """Approximate bytes this session pins (cache + shm + workers).

        Counts the CSR arrays actually materialized (graph, transpose),
        the cached degree arrays, the shared mirror, and a nominal
        per-worker overhead for a live pool — the currency the memory
        governor trades in when deciding what to evict.
        """
        from ..runtime.cost import DEFAULT_MEMORY_MODEL as mm

        g = self.graph
        if self._delta is not None:
            # Base CSR (both directions) + tombstones + add-log, plus
            # the cached merged snapshot currently being served.
            total = self._delta.nbytes()
            total += g.indptr.nbytes + g.indices.nbytes
            if g._in_indptr is not None:
                total += g._in_indptr.nbytes + g._in_indices.nbytes
        else:
            total = g.indptr.nbytes + g.indices.nbytes
            if g._in_indptr is not None:
                total += g._in_indptr.nbytes + g._in_indices.nbytes
        if self._degrees is not None:
            total += sum(a.nbytes for a in self._degrees)
        if self._mirror is not None:
            total += int(mm.mirror_bytes_per_node * g.num_nodes)
        if self._pool is not None:
            total += int(mm.worker_bytes * self._pool.num_workers)
        return int(total)

    def note_run(self, *, warm: bool) -> None:
        """Record one served run (``warm`` = every artifact reused)."""
        self.stats.runs += 1
        if warm:
            self.stats.warm_runs += 1

    # -- lifecycle ------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the pool and shared-memory segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool = None
        if self._mirror is not None:
            self._mirror.close()
            self._mirror = None

    def __enter__(self) -> "GraphSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "anonymous"
        return (
            f"GraphSession({label!r}, n={self.graph.num_nodes}, "
            f"fingerprint={self.fingerprint:#010x}, "
            f"runs={self.stats.runs})"
        )
