"""Unified execution engine: backends, warm sessions, batch serving.

This package is the single construction path for phase-2 executors and
the load-once/run-many serving surface above them:

* :mod:`repro.engine.shm` — shared-memory mirrors of SCC state and the
  fork-inherited worker context (deduplicated from the process
  executors);
* :mod:`repro.engine.pool` — the one worker-pool lifecycle (fork,
  liveness, rebuild, teardown);
* :mod:`repro.engine.backends` — the :class:`ExecutorBackend` protocol
  and registry (serial / threads / processes / supervised) with
  capability flags;
* :mod:`repro.engine.session` — :class:`GraphSession`: one graph,
  loaded once, with cached transpose/degrees/validation and a warm
  worker pool;
* :mod:`repro.engine.engine` — :class:`Engine`: fingerprint-keyed
  session cache plus ``run()`` / ``run_many()`` / ``update()``;
* :mod:`repro.engine.dynamic` — :class:`DynamicSCC`: incremental SCC
  maintenance over a mutable :class:`~repro.graph.delta.DeltaCSR`
  overlay (streaming edge inserts/deletes);
* :mod:`repro.engine.batch` — manifest parsing and per-job-isolated
  batch execution behind ``repro batch``.
"""

from .backends import (
    BACKENDS,
    BackendCapabilities,
    ExecutorBackend,
    backend_names,
    get_executor,
)
from .batch import BatchJob, BatchReport, JobRecord, load_manifest, run_batch
from .pool import WorkerPool, fork_available
from .session import GraphSession, SessionStats, graph_fingerprint
from .shm import (
    SharedStateMirror,
    arm_worker_context,
    disarm_worker_context,
    shm_array,
)


def __getattr__(name: str):
    # Engine pulls in repro.core, which (through the method pipelines)
    # reaches back into repro.runtime — the package that imports this
    # one at load time.  Resolving Engine lazily keeps the import graph
    # acyclic; every other symbol here is cycle-safe.
    if name == "Engine":
        from .engine import Engine

        return Engine
    if name == "UpdateReport":
        from .engine import UpdateReport

        return UpdateReport
    if name in ("DynamicSCC", "DynamicStats", "DEFAULT_DAMAGE_THRESHOLD"):
        from . import dynamic

        return getattr(dynamic, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BACKENDS",
    "BackendCapabilities",
    "ExecutorBackend",
    "backend_names",
    "get_executor",
    "BatchJob",
    "BatchReport",
    "JobRecord",
    "load_manifest",
    "run_batch",
    "Engine",
    "UpdateReport",
    "DynamicSCC",
    "DynamicStats",
    "DEFAULT_DAMAGE_THRESHOLD",
    "WorkerPool",
    "fork_available",
    "GraphSession",
    "SessionStats",
    "graph_fingerprint",
    "SharedStateMirror",
    "arm_worker_context",
    "disarm_worker_context",
    "shm_array",
]
