"""The ``ExecutorBackend`` protocol: one registry for phase-2 executors.

Four executors can drain the Recur-FWBW work queue — serial worklist,
threaded two-level queue, plain process pool, supervised process pool
— and before this module each caller (the method pipelines, the run
harness, the CLI, the bench harness) hand-rolled its own dispatch over
backend-name strings.  Now there is exactly one construction path:
:func:`get_executor` resolves a name to an :class:`ExecutorBackend`,
and every executor advertises :class:`BackendCapabilities` so callers
can reason about fault tolerance, deadline support and warm-pool reuse
instead of string-matching names.

The serial and threaded drivers live here in full; the process-backed
drivers delegate to :mod:`repro.runtime.mp_backend` and
:mod:`repro.runtime.supervisor`, which in turn build on the shared
:mod:`repro.engine.shm` / :mod:`repro.engine.pool` plumbing (no
executor owns private shm or pool-lifecycle code anymore).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from ..errors import PhaseTimeoutError

__all__ = [
    "BackendCapabilities",
    "ExecutorBackend",
    "BACKENDS",
    "backend_names",
    "get_executor",
    "SerialBackend",
    "ThreadsBackend",
    "ProcessesBackend",
    "SupervisedBackend",
]


@dataclass(frozen=True)
class BackendCapabilities:
    """What an executor can promise its callers."""

    #: survives worker death / task hangs (retry + degradation).
    fault_tolerant: bool = False
    #: honours a cooperative ``deadline`` (absolute monotonic bound).
    deadline: bool = False
    #: runs tasks in separate processes (GIL-free).
    processes: bool = False
    #: can reuse a :class:`~repro.engine.session.GraphSession`'s warm
    #: pool + shared mirror across runs.
    warm_pool: bool = False


@runtime_checkable
class ExecutorBackend(Protocol):
    """One way to drain the phase-2 work queue."""

    name: str
    capabilities: BackendCapabilities

    def run_phase(
        self,
        state,
        initial: Sequence[Tuple[int, Optional[np.ndarray]]],
        *,
        queue_k: int = 1,
        phase: str = "recur_fwbw",
        pivot_strategy: str = "random",
        num_workers: int = 2,
        supervisor=None,
        deadline: Optional[float] = None,
        session=None,
        phase2_batch=None,
    ) -> int:
        """Drain the queue; returns the number of tasks executed.

        ``phase2_batch`` is a resolved
        :class:`~repro.core.recurfwbw.Phase2BatchPolicy` (or None =
        per-pivot only): when set, small-task storms are drained in
        ≤64-pivot multi-source batches, bit-identically to the
        per-pivot path.
        """
        ...


class SerialBackend:
    """The deterministic serial worklist (default; trace-normative)."""

    name = "serial"
    capabilities = BackendCapabilities(deadline=True)

    def run_phase(
        self,
        state,
        initial,
        *,
        queue_k: int = 1,
        phase: str = "recur_fwbw",
        pivot_strategy: str = "random",
        num_workers: int = 2,
        supervisor=None,
        deadline: Optional[float] = None,
        session=None,
        phase2_batch=None,
    ) -> int:
        from ..core.recurfwbw import (
            WorkItem,
            _item_batchable,
            recur_fwbw_batch_task,
            recur_fwbw_task,
        )
        from ..runtime.trace import Task

        policy = phase2_batch
        start = time.monotonic()
        queue: deque = deque(
            WorkItem(color=c, nodes=nd) for c, nd in initial
        )
        tasks: List[Task] = []
        n_batches = n_batched = 0

        def finish(item, children, task_cost):
            idx = len(tasks)
            tasks.append(Task(cost=task_cost, parent=item.parent))
            for ch in children:
                ch.parent = idx
                queue.append(ch)

        while queue:
            if deadline is not None and time.monotonic() >= deadline:
                raise PhaseTimeoutError(phase, time.monotonic() - start)
            item = queue.popleft()
            if policy is not None and _item_batchable(item, policy):
                # Greedily extend the run with the consecutive
                # batchable queue prefix.  Popping the run up front and
                # appending all children afterwards preserves the exact
                # per-pivot FIFO order: the run's items were contiguous
                # at the head, so their children land behind the
                # remaining queue in both drains.
                run = [item]
                colors = {item.color}
                while (
                    queue
                    and len(run) < policy.width
                    and _item_batchable(queue[0], policy)
                    and queue[0].color not in colors
                ):
                    nxt = queue.popleft()
                    run.append(nxt)
                    colors.add(nxt.color)
                if len(run) >= policy.min_run:
                    results = recur_fwbw_batch_task(
                        state, run, pivot_strategy=pivot_strategy
                    )
                    for it, (children, task_cost) in zip(run, results):
                        finish(it, children, task_cost)
                    n_batches += 1
                    n_batched += len(run)
                else:
                    for it in run:
                        children, task_cost = recur_fwbw_task(
                            state, it, pivot_strategy=pivot_strategy
                        )
                        finish(it, children, task_cost)
                continue
            children, task_cost = recur_fwbw_task(
                state, item, pivot_strategy=pivot_strategy
            )
            finish(item, children, task_cost)
        state.trace.task_dag(phase, tasks, queue_k=queue_k)
        state.profile.bump("recur_tasks", len(tasks))
        if n_batches:
            state.profile.bump("phase2_batches", n_batches)
            state.profile.bump("phase2_batched_tasks", n_batched)
        return len(tasks)


class ThreadsBackend:
    """The real two-level work queue (correctness path; GIL-bound)."""

    name = "threads"
    capabilities = BackendCapabilities(deadline=True)

    def run_phase(
        self,
        state,
        initial,
        *,
        queue_k: int = 1,
        phase: str = "recur_fwbw",
        pivot_strategy: str = "random",
        num_workers: int = 2,
        supervisor=None,
        deadline: Optional[float] = None,
        session=None,
        phase2_batch=None,
    ) -> int:
        import threading

        from ..core.recurfwbw import (
            WorkItem,
            plan_batches,
            recur_fwbw_batch_task,
            recur_fwbw_task,
        )
        from ..runtime.trace import Task
        from ..runtime.workqueue import TwoLevelWorkQueue

        policy = phase2_batch
        items = [WorkItem(color=c, nodes=nd) for c, nd in initial]
        tasks: List[Task] = []
        lock = threading.Lock()
        stats = {"batches": 0, "batched": 0}

        def process(entry):
            # Queue entries are single WorkItems or planned batch runs
            # (lists); spawned children are re-planned the same way.
            if isinstance(entry, list):
                results = recur_fwbw_batch_task(
                    state, entry, pivot_strategy=pivot_strategy
                )
                spawned: List = []
                with lock:
                    for it, (children, task_cost) in zip(entry, results):
                        idx = len(tasks)
                        tasks.append(
                            Task(cost=task_cost, parent=it.parent)
                        )
                        for ch in children:
                            ch.parent = idx
                        spawned.extend(children)
                    stats["batches"] += 1
                    stats["batched"] += len(entry)
                return plan_batches(spawned, policy)
            children, task_cost = recur_fwbw_task(
                state, entry, pivot_strategy=pivot_strategy
            )
            with lock:
                idx = len(tasks)
                tasks.append(Task(cost=task_cost, parent=entry.parent))
            for ch in children:
                ch.parent = idx
            return (
                plan_batches(children, policy)
                if policy is not None
                else children
            )

        TwoLevelWorkQueue(num_workers, k=queue_k).run(
            plan_batches(items, policy) if policy is not None else items,
            process,
            deadline=deadline,
            phase=phase,
        )
        state.trace.task_dag(phase, tasks, queue_k=queue_k)
        state.profile.bump("recur_tasks", len(tasks))
        if stats["batches"]:
            state.profile.bump("phase2_batches", stats["batches"])
            state.profile.bump("phase2_batched_tasks", stats["batched"])
        return len(tasks)


class ProcessesBackend:
    """GIL-free worker processes over shared memory (POSIX only)."""

    name = "processes"
    capabilities = BackendCapabilities(processes=True, warm_pool=True)

    def run_phase(
        self,
        state,
        initial,
        *,
        queue_k: int = 1,
        phase: str = "recur_fwbw",
        pivot_strategy: str = "random",
        num_workers: int = 2,
        supervisor=None,
        deadline: Optional[float] = None,
        session=None,
        phase2_batch=None,
    ) -> int:
        from ..runtime.mp_backend import run_recur_phase_processes

        return run_recur_phase_processes(
            state,
            initial,
            num_workers=num_workers,
            queue_k=queue_k,
            phase=phase,
            session=session,
            phase2_batch=phase2_batch,
        )


class SupervisedBackend:
    """The process backend under the fault-tolerance supervisor."""

    name = "supervised"
    capabilities = BackendCapabilities(
        fault_tolerant=True, deadline=True, processes=True, warm_pool=True
    )

    def run_phase(
        self,
        state,
        initial,
        *,
        queue_k: int = 1,
        phase: str = "recur_fwbw",
        pivot_strategy: str = "random",
        num_workers: int = 2,
        supervisor=None,
        deadline: Optional[float] = None,
        session=None,
        phase2_batch=None,
    ) -> int:
        from ..runtime.supervisor import run_supervised_recur_phase

        report = run_supervised_recur_phase(
            state,
            initial,
            num_workers=num_workers,
            queue_k=queue_k,
            phase=phase,
            pivot_strategy=pivot_strategy,
            config=supervisor,
            session=session,
            phase2_batch=phase2_batch,
        )
        return report.tasks


#: the one backend registry; every executor construction goes through it.
BACKENDS: Dict[str, ExecutorBackend] = {
    b.name: b
    for b in (
        SerialBackend(),
        ThreadsBackend(),
        ProcessesBackend(),
        SupervisedBackend(),
    )
}


def backend_names() -> Tuple[str, ...]:
    """Registered executor names, registration order."""
    return tuple(BACKENDS)


def get_executor(name: str) -> ExecutorBackend:
    """Resolve a backend name (the single executor-construction path)."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
