"""The ``ExecutorBackend`` protocol: one registry for phase-2 executors.

Four executors can drain the Recur-FWBW work queue — serial worklist,
threaded two-level queue, plain process pool, supervised process pool
— and before this module each caller (the method pipelines, the run
harness, the CLI, the bench harness) hand-rolled its own dispatch over
backend-name strings.  Now there is exactly one construction path:
:func:`get_executor` resolves a name to an :class:`ExecutorBackend`,
and every executor advertises :class:`BackendCapabilities` so callers
can reason about fault tolerance, deadline support and warm-pool reuse
instead of string-matching names.

The serial and threaded drivers live here in full; the process-backed
drivers delegate to :mod:`repro.runtime.mp_backend` and
:mod:`repro.runtime.supervisor`, which in turn build on the shared
:mod:`repro.engine.shm` / :mod:`repro.engine.pool` plumbing (no
executor owns private shm or pool-lifecycle code anymore).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from ..errors import PhaseTimeoutError

__all__ = [
    "BackendCapabilities",
    "ExecutorBackend",
    "BACKENDS",
    "backend_names",
    "get_executor",
    "SerialBackend",
    "ThreadsBackend",
    "ProcessesBackend",
    "SupervisedBackend",
]


@dataclass(frozen=True)
class BackendCapabilities:
    """What an executor can promise its callers."""

    #: survives worker death / task hangs (retry + degradation).
    fault_tolerant: bool = False
    #: honours a cooperative ``deadline`` (absolute monotonic bound).
    deadline: bool = False
    #: runs tasks in separate processes (GIL-free).
    processes: bool = False
    #: can reuse a :class:`~repro.engine.session.GraphSession`'s warm
    #: pool + shared mirror across runs.
    warm_pool: bool = False


@runtime_checkable
class ExecutorBackend(Protocol):
    """One way to drain the phase-2 work queue."""

    name: str
    capabilities: BackendCapabilities

    def run_phase(
        self,
        state,
        initial: Sequence[Tuple[int, Optional[np.ndarray]]],
        *,
        queue_k: int = 1,
        phase: str = "recur_fwbw",
        pivot_strategy: str = "random",
        num_workers: int = 2,
        supervisor=None,
        deadline: Optional[float] = None,
        session=None,
    ) -> int:
        """Drain the queue; returns the number of tasks executed."""
        ...


class SerialBackend:
    """The deterministic serial worklist (default; trace-normative)."""

    name = "serial"
    capabilities = BackendCapabilities(deadline=True)

    def run_phase(
        self,
        state,
        initial,
        *,
        queue_k: int = 1,
        phase: str = "recur_fwbw",
        pivot_strategy: str = "random",
        num_workers: int = 2,
        supervisor=None,
        deadline: Optional[float] = None,
        session=None,
    ) -> int:
        from ..core.recurfwbw import WorkItem, recur_fwbw_task
        from ..runtime.trace import Task

        start = time.monotonic()
        queue: deque = deque(
            WorkItem(color=c, nodes=nd) for c, nd in initial
        )
        tasks: List[Task] = []
        while queue:
            if deadline is not None and time.monotonic() >= deadline:
                raise PhaseTimeoutError(phase, time.monotonic() - start)
            item = queue.popleft()
            children, task_cost = recur_fwbw_task(
                state, item, pivot_strategy=pivot_strategy
            )
            idx = len(tasks)
            tasks.append(Task(cost=task_cost, parent=item.parent))
            for ch in children:
                ch.parent = idx
                queue.append(ch)
        state.trace.task_dag(phase, tasks, queue_k=queue_k)
        state.profile.bump("recur_tasks", len(tasks))
        return len(tasks)


class ThreadsBackend:
    """The real two-level work queue (correctness path; GIL-bound)."""

    name = "threads"
    capabilities = BackendCapabilities(deadline=True)

    def run_phase(
        self,
        state,
        initial,
        *,
        queue_k: int = 1,
        phase: str = "recur_fwbw",
        pivot_strategy: str = "random",
        num_workers: int = 2,
        supervisor=None,
        deadline: Optional[float] = None,
        session=None,
    ) -> int:
        import threading

        from ..core.recurfwbw import WorkItem, recur_fwbw_task
        from ..runtime.trace import Task
        from ..runtime.workqueue import TwoLevelWorkQueue

        items = [WorkItem(color=c, nodes=nd) for c, nd in initial]
        tasks: List[Task] = []
        lock = threading.Lock()

        def process(item):
            children, task_cost = recur_fwbw_task(
                state, item, pivot_strategy=pivot_strategy
            )
            with lock:
                idx = len(tasks)
                tasks.append(Task(cost=task_cost, parent=item.parent))
            for ch in children:
                ch.parent = idx
            return children

        TwoLevelWorkQueue(num_workers, k=queue_k).run(
            items, process, deadline=deadline, phase=phase
        )
        state.trace.task_dag(phase, tasks, queue_k=queue_k)
        state.profile.bump("recur_tasks", len(tasks))
        return len(tasks)


class ProcessesBackend:
    """GIL-free worker processes over shared memory (POSIX only)."""

    name = "processes"
    capabilities = BackendCapabilities(processes=True, warm_pool=True)

    def run_phase(
        self,
        state,
        initial,
        *,
        queue_k: int = 1,
        phase: str = "recur_fwbw",
        pivot_strategy: str = "random",
        num_workers: int = 2,
        supervisor=None,
        deadline: Optional[float] = None,
        session=None,
    ) -> int:
        from ..runtime.mp_backend import run_recur_phase_processes

        return run_recur_phase_processes(
            state,
            initial,
            num_workers=num_workers,
            queue_k=queue_k,
            phase=phase,
            session=session,
        )


class SupervisedBackend:
    """The process backend under the fault-tolerance supervisor."""

    name = "supervised"
    capabilities = BackendCapabilities(
        fault_tolerant=True, deadline=True, processes=True, warm_pool=True
    )

    def run_phase(
        self,
        state,
        initial,
        *,
        queue_k: int = 1,
        phase: str = "recur_fwbw",
        pivot_strategy: str = "random",
        num_workers: int = 2,
        supervisor=None,
        deadline: Optional[float] = None,
        session=None,
    ) -> int:
        from ..runtime.supervisor import run_supervised_recur_phase

        report = run_supervised_recur_phase(
            state,
            initial,
            num_workers=num_workers,
            queue_k=queue_k,
            phase=phase,
            pivot_strategy=pivot_strategy,
            config=supervisor,
            session=session,
        )
        return report.tasks


#: the one backend registry; every executor construction goes through it.
BACKENDS: Dict[str, ExecutorBackend] = {
    b.name: b
    for b in (
        SerialBackend(),
        ThreadsBackend(),
        ProcessesBackend(),
        SupervisedBackend(),
    )
}


def backend_names() -> Tuple[str, ...]:
    """Registered executor names, registration order."""
    return tuple(BACKENDS)


def get_executor(name: str) -> ExecutorBackend:
    """Resolve a backend name (the single executor-construction path)."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
