"""End-to-end integrity tier: trust the warm state, but verify it.

The serving stack keeps graph sessions warm for hours and forks
workers that inherit their arrays; every response's correctness
silently assumes those bytes never rot.  This package removes the
assumption with three cooperating defenses (DESIGN.md §14):

* :mod:`repro.integrity.checksums` — block-CRC sidecars
  (:class:`ChecksummedArrays`) over session-owned CSR/transpose/degree
  arrays and run-owned label state, verified at session borrow, at
  every phase boundary, and before a response is emitted; a mismatch
  raises :class:`~repro.errors.IntegrityError` (exit 20);
* :mod:`repro.integrity.certify` — machine-checkable result
  certificates (:func:`certify_result`): canonical CRC, sampled FW∧BW
  membership proofs reusing the phase-2 multi-source kernels, and a
  full Tarjan cross-check tier for small graphs;
* :mod:`repro.integrity.audit` — the continuous self-audit loop
  (:class:`SelfAuditor`): a deterministic sample of completed requests
  re-executed on the serial reference-NumPy path, mismatches
  quarantining the session and marking the backend suspect.

Chaos drills drive the whole detect → quarantine → rebuild → correct
path with the deterministic ``corrupt`` fault kind
(:mod:`repro.runtime.faults`).
"""

from .audit import AuditRecord, SelfAuditor
from .certify import CERTIFY_LEVELS, certify_result
from .checksums import DEFAULT_BLOCK_BYTES, ChecksummedArrays

__all__ = [
    "AuditRecord",
    "SelfAuditor",
    "CERTIFY_LEVELS",
    "certify_result",
    "ChecksummedArrays",
    "DEFAULT_BLOCK_BYTES",
]
