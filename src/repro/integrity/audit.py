"""The continuous self-audit loop: re-run a sample, compare CRCs.

Checksums catch *storage* rot; certification proves one result.  The
:class:`SelfAuditor` closes the remaining gap — a systematically wrong
fast path (a miscompiled kernel, a broken executor) that produces
internally consistent wrong answers — by re-executing a deterministic
sample of completed requests on its own small engine pinned to the
**serial backend + reference-NumPy kernel tier** (the implementations
the whole library was validated against) and comparing canonical label
CRCs.

Design points:

* **deterministic sampling** — a request is audited iff
  ``crc32(seed:seq) / 2^32 < rate``; replays and multi-process fronts
  sample identically, and tests can force any request in or out.
* **off the hot path** — submissions enqueue onto a bounded queue and
  a daemon thread drains it; a full queue *drops* the audit (counted,
  never blocking a response).
* **mismatch = corruption** — the callback receives the request, the
  served CRC and the reference CRC; the service quarantines the
  session, marks the serving backend suspect through its breakers,
  and counts the event (see :mod:`repro.service.server`).
"""

from __future__ import annotations

import queue
import threading
import zlib
from typing import Callable, Optional

from ..ioutil import crc32_chunks

__all__ = ["AuditRecord", "SelfAuditor"]


class AuditRecord:
    """One completed request eligible for re-execution."""

    __slots__ = (
        "seq",
        "request",
        "labels_crc32",
        "backend_used",
        "fingerprint",
    )

    def __init__(
        self,
        seq: int,
        request: dict,
        labels_crc32: int,
        backend_used: Optional[str],
        fingerprint: Optional[int] = None,
    ) -> None:
        self.seq = seq
        self.request = request
        self.labels_crc32 = labels_crc32
        self.backend_used = backend_used
        self.fingerprint = fingerprint


class SelfAuditor:
    """Background re-execution of sampled requests on the reference
    path.

    ``on_mismatch(record, reference_crc)`` fires from the audit thread
    when the reference disagrees with what was served.  ``engine`` may
    be injected for tests; by default the auditor owns a tiny serial
    engine with integrity checksums on (the reference must not itself
    serve from rotten arrays).
    """

    def __init__(
        self,
        *,
        rate: float,
        seed: int = 0,
        max_queue: int = 64,
        engine=None,
        on_mismatch: Optional[Callable] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("audit rate must be within [0, 1]")
        self.rate = rate
        self.seed = seed
        self.on_mismatch = on_mismatch
        self._own_engine = engine is None
        if engine is None:
            from ..engine.engine import Engine

            engine = Engine(
                backend="serial",
                canonical=True,
                max_sessions=2,
                integrity=True,
            )
        self.engine = engine
        self._queue: "queue.Queue[Optional[AuditRecord]]" = queue.Queue(
            maxsize=max_queue
        )
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self._lock = threading.Lock()
        # counters
        self.sampled = 0
        self.audits_run = 0
        self.mismatches = 0
        self.dropped = 0
        self.errors = 0

    # -- sampling -------------------------------------------------------
    def selects(self, seq: int) -> bool:
        """Deterministic verdict: is request ``seq`` in the sample?"""
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        token = f"{self.seed}:{seq}".encode()
        return (zlib.crc32(token) & 0xFFFFFFFF) / 2**32 < self.rate

    def maybe_submit(
        self,
        seq: int,
        request: dict,
        labels_crc32: Optional[int],
        backend_used: Optional[str] = None,
        fingerprint: Optional[int] = None,
    ) -> bool:
        """Enqueue the request for audit when the sample selects it.

        Returns True when enqueued.  Never blocks: a full queue drops
        the audit and counts it.
        """
        if labels_crc32 is None or not self.selects(seq):
            return False
        self.sampled += 1
        record = AuditRecord(
            seq, dict(request), labels_crc32, backend_used, fingerprint
        )
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            self.dropped += 1
            return False
        self._ensure_thread()
        return True

    # -- the audit itself ----------------------------------------------
    def reference_crc(self, request: dict) -> int:
        """Re-execute ``request`` on the serial reference path."""
        from ..kernels import use_backend

        with self._lock:
            session = self.engine.load(
                request["graph"],
                scale=request.get("scale"),
                seed=None,
                on_error=request.get("on_error", "strict"),
            )
            with use_backend("numpy"):
                result = self.engine.run(
                    session,
                    method=request.get("method", "method2"),
                    backend="serial",
                    seed=request.get("seed", 0),
                    **(request.get("options") or {}),
                )
        return crc32_chunks(result.labels.tobytes())

    def audit_once(self, record: AuditRecord) -> bool:
        """Run one audit synchronously; returns True when it matched."""
        reference = self.reference_crc(record.request)
        self.audits_run += 1
        if reference == record.labels_crc32:
            return True
        self.mismatches += 1
        if self.on_mismatch is not None:
            self.on_mismatch(record, reference)
        return False

    # -- background thread ----------------------------------------------
    def _ensure_thread(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name="self-auditor"
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stopped.is_set():
            try:
                record = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            if record is None:
                self._queue.task_done()
                break
            try:
                self.audit_once(record)
            except Exception:
                # an audit must never take the service down; the
                # error counter is its trace.
                self.errors += 1
            finally:
                self._queue.task_done()

    def drain(self, timeout: float = 30.0) -> bool:
        """Block until every queued audit has run (tests, drain path).

        Returns True when the queue fully drained within ``timeout``.
        """
        import time

        done = threading.Event()

        def _wait() -> None:
            self._queue.join()
            done.set()

        waiter = threading.Thread(target=_wait, daemon=True)
        waiter.start()
        return done.wait(timeout)

    def stop(self) -> None:
        """Stop the audit thread and release the reference engine."""
        self._stopped.set()
        try:
            self._queue.put_nowait(None)
        except queue.Full:
            pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self._own_engine:
            self.engine.close()

    def to_dict(self) -> dict:
        return {
            "rate": self.rate,
            "sampled": self.sampled,
            "audits_run": self.audits_run,
            "mismatches": self.mismatches,
            "dropped": self.dropped,
            "errors": self.errors,
        }
