"""Block-CRC sidecars over warm arrays: the cheap end of the tier.

A :class:`ChecksummedArrays` store seals named numpy arrays into
per-block CRC32 sidecars and later re-verifies them.  The block layout
(~64 KB per block) keeps two properties the serving layer needs:

* **detection granularity** — a mismatch names the exact array and
  block, so an operator can tell "one flipped bit in the transpose"
  from "the whole session is garbage";
* **cheap verification** — CRC32 over memoryview slices runs at
  memcpy-like speed (zlib's slice-by-8), so verifying a warm session at
  borrow/return and at phase boundaries costs a small fraction of one
  CSR sweep (measured by ``benchmarks/bench_integrity.py`` into
  ``BENCH_integrity.json``, gated at <= 5% serving overhead).

Seals are *identity-free*: only byte content is hashed (plus dtype and
byte length, which change the block layout), so re-verifying a view,
a copy, or the fork-inherited twin of a sealed array all work.  A
mismatch raises :class:`~repro.errors.IntegrityError` (exit code 20).
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import IntegrityError

__all__ = ["DEFAULT_BLOCK_BYTES", "ChecksummedArrays"]

#: block size for the CRC sidecars; 64 KB keeps sidecar overhead
#: ~0.006% of the data while still localizing a mismatch.
DEFAULT_BLOCK_BYTES = 64 * 1024


def _array_bytes(array: np.ndarray) -> memoryview:
    """A zero-copy byte view of ``array`` (contiguous arrays only)."""
    a = np.ascontiguousarray(array)
    return memoryview(a).cast("B")


class ChecksummedArrays:
    """Seal named arrays into block-CRC sidecars; verify them later.

    Not thread-safe for concurrent seal/verify of the *same* name;
    callers (sessions, runs) already serialize access to the arrays
    themselves, which covers the sidecars too.
    """

    def __init__(self, *, block_bytes: int = DEFAULT_BLOCK_BYTES) -> None:
        if block_bytes < 1:
            raise ValueError("block_bytes must be >= 1")
        self.block_bytes = block_bytes
        #: name -> (dtype str, nbytes, per-block CRC tuple)
        self._seals: Dict[str, Tuple[str, int, Tuple[int, ...]]] = {}
        # counters (surfaced in session stats / service reports)
        self.seals = 0
        self.verifications = 0
        self.mismatches = 0

    # -- sealing --------------------------------------------------------
    def _block_crcs(self, array: np.ndarray) -> Tuple[int, ...]:
        mv = _array_bytes(array)
        step = self.block_bytes
        return tuple(
            zlib.crc32(mv[off : off + step]) & 0xFFFFFFFF
            for off in range(0, len(mv) or 1, step)
        )

    def seal(self, name: str, array: np.ndarray) -> None:
        """(Re)compute ``name``'s sidecar from ``array``'s bytes."""
        self._seals[name] = (
            str(array.dtype),
            int(array.nbytes),
            self._block_crcs(array),
        )
        self.seals += 1

    def drop(self, name: str) -> bool:
        """Forget one seal (True when it existed)."""
        return self._seals.pop(name, None) is not None

    def sealed(self, name: str) -> bool:
        return name in self._seals

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._seals))

    # -- verification ---------------------------------------------------
    def verify(
        self, name: str, array: np.ndarray, *, context: str = ""
    ) -> None:
        """Check ``array`` against ``name``'s sidecar.

        Raises :class:`~repro.errors.IntegrityError` naming the array,
        the first mismatching block, and ``context`` (the boundary
        that caught it).  An unsealed name is a caller bug and raises
        ``KeyError`` — silently passing unchecked data would defeat
        the tier.
        """
        dtype, nbytes, blocks = self._seals[name]
        self.verifications += 1
        if str(array.dtype) != dtype or int(array.nbytes) != nbytes:
            self.mismatches += 1
            raise IntegrityError(
                f"array shape/dtype drifted from seal "
                f"(sealed {dtype}/{nbytes}B, "
                f"got {array.dtype}/{array.nbytes}B)",
                array=name,
                context=context or None,
            )
        mv = _array_bytes(array)
        step = self.block_bytes
        for i, expected in enumerate(blocks):
            actual = zlib.crc32(mv[i * step : (i + 1) * step]) & 0xFFFFFFFF
            if actual != expected:
                self.mismatches += 1
                raise IntegrityError(
                    f"block checksum mismatch "
                    f"(expected {expected:#010x}, got {actual:#010x})",
                    array=name,
                    block=i,
                    context=context or None,
                )

    def verify_all(
        self,
        arrays: Dict[str, np.ndarray],
        *,
        context: str = "",
        require_all_sealed: bool = False,
    ) -> int:
        """Verify every sealed name present in ``arrays``.

        Names in ``arrays`` without a seal are skipped (a session may
        not have built its transpose yet) unless ``require_all_sealed``
        is set.  Returns how many arrays were verified.
        """
        checked = 0
        for name, array in arrays.items():
            if name not in self._seals:
                if require_all_sealed:
                    raise KeyError(f"array {name!r} was never sealed")
                continue
            self.verify(name, array, context=context)
            checked += 1
        return checked

    def crc32(self, name: str) -> Optional[int]:
        """Whole-array CRC derived from the sidecar (None if unsealed).

        CRC32 of concatenated blocks is *not* the CRC of the whole
        byte string, so this combines block CRCs with
        ``zlib.crc32_combine``-style folding via recomputation-free
        accumulation: we store per-block CRCs, so the whole-array tag
        is simply the CRC chain over the block tags — stable, cheap,
        and good enough for equality comparison between two sidecars.
        """
        sealed = self._seals.get(name)
        if sealed is None:
            return None
        crc = 0
        for block in sealed[2]:
            crc = zlib.crc32(
                block.to_bytes(4, "little"), crc
            )
        return crc & 0xFFFFFFFF

    def to_dict(self) -> dict:
        return {
            "sealed_arrays": len(self._seals),
            "block_bytes": self.block_bytes,
            "seals": self.seals,
            "verifications": self.verifications,
            "mismatches": self.mismatches,
        }

    def __len__(self) -> int:
        return len(self._seals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChecksummedArrays({len(self._seals)} sealed, "
            f"{self.verifications} verified, "
            f"{self.mismatches} mismatched)"
        )
