"""Result certification: prove labels right, not just repeatable.

``labels_crc32`` only proves two runs *agree*; this module produces a
machine-checkable certificate that the partition itself is an SCC
partition, at three escalating levels:

``crc``
    The canonical-label CRC plus counts — the existing agreement tag,
    packaged as a certificate.
``sample`` (default)
    Additionally samples K SCC representatives and *proves membership*
    for every claimed member: a colour-confined multi-source FW/BW
    sweep (:func:`repro.core.recurfwbw.multi_source_reach`, the
    phase-2 bit-parallel machinery) is seeded at each representative
    and confined to its label's node set, so a node certifies exactly
    when it is forward- *and* backward-reachable from the
    representative inside the claimed SCC — the defining property.  A
    label group that is not actually strongly connected leaves some
    member unreached and fails the proof.
``full``
    Additionally cross-checks the whole partition against an
    independent Tarjan run for graphs up to ``tarjan_max_nodes``.

Certification failure raises :class:`~repro.errors.IntegrityError`
(exit 20) under ``strict`` (the serving default — a wrong-label
response must never leave the service); pass ``strict=False`` to get
the failed certificate back for inspection.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import IntegrityError
from ..ioutil import crc32_chunks

__all__ = ["CERTIFY_LEVELS", "certify_result"]

CERTIFY_LEVELS = ("crc", "sample", "full")

#: waves per multi-source sweep (the kernel's uint64 lane budget).
_MAX_WAVES = 64


def _sample_proof(graph, labels, sampled_labels, reps) -> list:
    """FW∧BW membership proofs for the sampled SCCs (batched ≤64)."""
    from ..core.recurfwbw import multi_source_reach
    from ..kernels import MS_SCC, ms_fwbw_intersect

    proofs = []
    for start in range(0, len(sampled_labels), _MAX_WAVES):
        batch_labels = sampled_labels[start : start + _MAX_WAVES]
        batch_reps = reps[start : start + _MAX_WAVES]
        bits, fw, bw = multi_source_reach(
            graph.indptr,
            graph.indices,
            graph.in_indptr,
            graph.in_indices,
            labels,
            batch_labels,
            batch_reps,
        )
        for j, (lab, rep) in enumerate(zip(batch_labels, batch_reps)):
            members = np.flatnonzero(labels == lab)
            cats = ms_fwbw_intersect(
                members,
                np.full(members.size, bits[j], dtype=np.uint64),
                fw,
                bw,
            )
            unproved = int((cats != MS_SCC).sum())
            proofs.append(
                {
                    "label": int(lab),
                    "representative": int(rep),
                    "size": int(members.size),
                    "unproved_members": unproved,
                    "proved": unproved == 0,
                }
            )
    return proofs


def certify_result(
    graph,
    labels: np.ndarray,
    *,
    level: str = "sample",
    k: int = 8,
    seed: int = 0,
    tarjan_max_nodes: int = 50_000,
    strict: bool = True,
) -> dict:
    """Certify that ``labels`` is the SCC partition of ``graph``.

    ``labels`` must be the *canonical* label array (the engine's
    default output).  ``k`` bounds how many SCCs the ``sample`` level
    proves (drawn deterministically from ``seed``; the giant SCC —
    the small-world case that matters — is always included when one
    exists).  Returns the certificate dict; raises
    :class:`~repro.errors.IntegrityError` on a failed proof when
    ``strict``.
    """
    if level not in CERTIFY_LEVELS:
        raise ValueError(
            f"unknown certify level {level!r}; choose from {CERTIFY_LEVELS}"
        )
    labels = np.asarray(labels, dtype=np.int64)
    n = int(graph.num_nodes)
    if labels.shape[0] != n:
        raise ValueError(
            f"labels cover {labels.shape[0]} nodes, graph has {n}"
        )
    uniq, first_idx, counts = np.unique(
        labels, return_index=True, return_counts=True
    )
    cert: dict = {
        "version": 1,
        "level": level,
        "n": n,
        "m": int(graph.num_edges),
        "num_sccs": int(uniq.size),
        "labels_crc32": crc32_chunks(labels.tobytes()),
        "seed": int(seed),
        "samples_requested": int(k),
        "sampled": [],
        "tarjan_checked": False,
        "ok": True,
    }
    failures = []

    if level in ("sample", "full") and uniq.size and k > 0:
        take = min(int(k), int(uniq.size), _MAX_WAVES)
        rng = np.random.default_rng(seed)
        picked = rng.choice(uniq.size, size=take, replace=False)
        giant = int(np.argmax(counts))
        if giant not in picked:
            picked[0] = giant
        picked = np.sort(picked)
        sampled_labels = uniq[picked]
        # representative = the label's first node in index order; for
        # canonical labels that is also the node that named the SCC.
        reps = first_idx[picked].astype(np.int64)
        cert["sampled"] = _sample_proof(
            graph, labels, sampled_labels, reps
        )
        for proof in cert["sampled"]:
            if not proof["proved"]:
                failures.append(
                    f"SCC {proof['label']} (rep {proof['representative']}): "
                    f"{proof['unproved_members']}/{proof['size']} member(s) "
                    f"not FW∧BW-reachable from the representative"
                )

    if level == "full" and n <= tarjan_max_nodes:
        from ..core import tarjan_scc
        from ..core.result import same_partition

        oracle = tarjan_scc(graph)
        cert["tarjan_checked"] = True
        if not same_partition(labels, oracle):
            failures.append(
                "partition disagrees with the independent Tarjan run"
            )

    if failures:
        cert["ok"] = False
        cert["failures"] = failures
        if strict:
            raise IntegrityError(
                f"result certification failed: {'; '.join(failures)}",
                context=f"certify:{level}",
            )
    return cert
