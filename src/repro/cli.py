"""Command-line interface.

Usage (installed as ``python -m repro``)::

    python -m repro datasets
    python -m repro scc --dataset livej --method method2 --threads 32
    python -m repro scc --input my_edges.txt --method tarjan
    python -m repro sweep --dataset twitter
    python -m repro info --dataset ca-road
    python -m repro run --input web.txt.gz --checkpoint-dir ckpts/
    python -m repro run --resume ckpts/
    python -m repro batch jobs.json --output report.json
    python -m repro serve --max-queue 8 --request-timeout 10

``scc`` detects SCCs and (for the parallel methods) reports the
simulated time at the requested thread count; ``sweep`` prints a full
Figure 6-style panel; ``info`` prints structural statistics without
running the parallel algorithms; ``run`` executes under the lifecycle
harness (phase-boundary checkpoints, per-phase deadlines, backend
degradation) and ``run --resume`` continues an interrupted run;
``batch`` executes a JSON manifest of jobs over warm engine sessions
with per-job error isolation (one bad job can't sink the batch);
``serve`` runs the long-lived hardened daemon (admission control,
retry/backoff, circuit breakers, memory governor, graceful drain)
answering JSON requests on stdin or a Unix socket.

Failures exit with the typed codes documented in
:mod:`repro.errors` (11 = ingest, 12 = validation, 13 = checkpoint,
14 = phase timeout, ... 17 = overload shed, 18 = memory budget,
20 = integrity/corruption detected), so scripts can branch on *what*
failed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from .kernels import BACKEND_CHOICES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel SCC detection in small-world graphs "
        "(Hong, Rodia & Olukotun, SC'13 reproduction)",
    )
    parser.add_argument(
        "--kernels",
        default=None,
        choices=BACKEND_CHOICES,
        help="kernel backend for the hot traversal/trim loops: 'numpy' "
        "(reference), 'numba' (JIT-compiled loops when numba is "
        "installed, tuned NumPy fallbacks otherwise), or 'auto' "
        "(default; also settable via $REPRO_KERNELS)",
    )
    # Accept --kernels after the subcommand as well; SUPPRESS keeps the
    # subparser from clobbering a value parsed at the top level.
    kernel_parent = argparse.ArgumentParser(add_help=False)
    kernel_parent.add_argument(
        "--kernels",
        default=argparse.SUPPRESS,
        choices=BACKEND_CHOICES,
        help=argparse.SUPPRESS,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_source(p: argparse.ArgumentParser) -> None:
        src = p.add_mutually_exclusive_group(required=True)
        src.add_argument(
            "--dataset",
            help="surrogate dataset name (see `repro datasets`)",
        )
        src.add_argument(
            "--input", help="edge-list file (src dst per line)"
        )
        p.add_argument(
            "--scale",
            type=float,
            default=None,
            help="surrogate scale factor (default: $REPRO_SCALE or 1.0)",
        )
        p.add_argument(
            "--on-error",
            default="strict",
            choices=("strict", "repair", "skip"),
            help="malformed-input policy for --input files: 'strict' "
            "fails with file:line diagnostics, 'repair' coerces what "
            "it safely can, 'skip' drops bad records (both report "
            "what they changed)",
        )

    p_list = sub.add_parser("datasets", help="list dataset surrogates")

    p_scc = sub.add_parser(
        "scc", help="detect SCCs", parents=[kernel_parent]
    )
    add_graph_source(p_scc)
    p_scc.add_argument(
        "--method",
        default="method2",
        help="algorithm (tarjan, kosaraju, baseline, method1, method2, "
        "fwbw, coloring, multistep)",
    )
    p_scc.add_argument("--seed", type=int, default=0)
    p_scc.add_argument(
        "--threads",
        type=int,
        default=32,
        help="simulated thread count for the timing report",
    )
    p_scc.add_argument(
        "--backend",
        default="serial",
        choices=("serial", "threads", "processes", "supervised"),
        help="phase-2 executor; 'supervised' adds fault tolerance "
        "(per-task timeouts, retry, serial degradation, verification)",
    )
    p_scc.add_argument(
        "--workers",
        type=int,
        default=2,
        help="real worker count for the threads/processes/supervised "
        "backends",
    )
    p_scc.add_argument(
        "--task-timeout",
        type=float,
        default=30.0,
        help="supervised backend: per-task deadline in seconds",
    )
    p_scc.add_argument(
        "--max-task-retries",
        type=int,
        default=2,
        help="supervised backend: failures per task before degrading "
        "to the serial driver",
    )
    p_scc.add_argument(
        "--fault-plan",
        default=None,
        help="inject faults for a recovery demo: 'kind@index[:stage]' "
        "list (e.g. 'crash@2,hang@0:mid,poison@5') or a JSON spec "
        "list; forces the supervised backend",
    )
    p_scc.add_argument(
        "--certify",
        nargs="?",
        const="sample",
        default=None,
        choices=("crc", "sample", "full"),
        help="emit a machine-checkable result certificate: 'crc' tags "
        "the canonical labels, 'sample' (the bare-flag default) also "
        "proves FW∧BW membership for sampled SCCs, 'full' adds an "
        "independent Tarjan cross-check; a failed proof exits 20",
    )
    p_scc.add_argument(
        "--phase2-batch",
        action="store_true",
        help="drain the Recur-FWBW tail in bit-parallel multi-source "
        "batches (up to 64 pivots per CSR sweep); labels stay "
        "bit-identical to the per-pivot path (method1/method2 only)",
    )

    p_sweep = sub.add_parser(
        "sweep",
        help="Figure 6-style speedup panel for one graph",
        parents=[kernel_parent],
    )
    add_graph_source(p_sweep)
    p_sweep.add_argument(
        "--methods",
        default="baseline,method1,method2",
        help="comma-separated method list",
    )

    p_info = sub.add_parser("info", help="structural statistics")
    add_graph_source(p_info)

    p_run = sub.add_parser(
        "run",
        help="checkpointed, resumable run under the lifecycle harness",
        parents=[kernel_parent],
    )
    src = p_run.add_mutually_exclusive_group(required=True)
    src.add_argument(
        "--dataset", help="surrogate dataset name (see `repro datasets`)"
    )
    src.add_argument("--input", help="edge-list file (src dst per line)")
    src.add_argument(
        "--resume",
        metavar="CKPT",
        help="checkpoint file or directory to resume from; the run "
        "configuration and input graph are restored from the "
        "checkpoint, and execution picks up at the first incomplete "
        "phase",
    )
    p_run.add_argument(
        "--scale",
        type=float,
        default=None,
        help="surrogate scale factor (default: $REPRO_SCALE or 1.0)",
    )
    p_run.add_argument(
        "--on-error",
        default="strict",
        choices=("strict", "repair", "skip"),
        help="malformed-input policy for --input files",
    )
    p_run.add_argument(
        "--method",
        default="method2",
        choices=("method1", "method2"),
        help="paper pipeline to run (the harness covers the "
        "checkpointable phase plans)",
    )
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for phase-boundary checkpoints (plus the "
        "input graph); omit to run without persistence",
    )
    p_run.add_argument(
        "--phase-timeout",
        type=float,
        default=None,
        help="per-phase wall-clock deadline in seconds; a wedged "
        "phase fails typed (exit 14) instead of hanging",
    )
    p_run.add_argument(
        "--backend",
        default=None,
        choices=("serial", "threads", "processes", "supervised"),
        help="phase-2 executor (default serial; on resume, the "
        "checkpointed choice unless overridden)",
    )
    p_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the non-serial backends",
    )
    p_run.add_argument(
        "--threads",
        type=int,
        default=32,
        help="simulated thread count for the timing report",
    )

    p_batch = sub.add_parser(
        "batch",
        help="run a manifest of (graph, method, backend) jobs over "
        "warm engine sessions",
        parents=[kernel_parent],
    )
    p_batch.add_argument(
        "manifest",
        help="JSON manifest: {'jobs': [{graph, method, backend, "
        "kernels, seed, scale, workers, ...}, ...]} or a bare list; "
        "'graph' is a dataset name or an edge-list path",
    )
    p_batch.add_argument(
        "--output",
        default=None,
        help="write the JSON batch report here (atomic); default: "
        "summary to stdout only",
    )
    p_batch.add_argument(
        "--fault-plan",
        default=None,
        help="inject batch-level faults ('kind@index[:stage]' list or "
        "JSON spec) at the per-job boundary; the hit job fails typed "
        "and the batch continues",
    )
    p_batch.add_argument(
        "--retries",
        type=int,
        default=1,
        help="total attempts per job; transient failures (broken "
        "pool, timeout, injected chaos) retry with backoff, "
        "permanent ones fail the job immediately (default 1 = no "
        "retry)",
    )
    p_batch.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        help="base retry backoff in seconds (doubles per attempt, "
        "deterministic jitter)",
    )
    p_batch.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="default wall-clock budget per job in seconds (a job's "
        "own 'timeout' field wins); expiry fails typed (exit 14)",
    )
    p_batch.add_argument(
        "--certify",
        nargs="?",
        const="sample",
        default=None,
        choices=("crc", "sample", "full"),
        help="default certification level for every job (a job's own "
        "'certify' field wins); certificates land in the report",
    )
    p_batch.add_argument(
        "--no-checksums",
        action="store_true",
        help="disable the block-CRC integrity sidecars over warm "
        "session arrays (on by default; a mismatch fails the job "
        "typed with exit 20 and quarantines the session)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="long-running hardened SCC service (JSON requests on "
        "stdin or a Unix socket)",
        parents=[kernel_parent],
    )
    p_serve.add_argument(
        "--backend",
        default="serial",
        choices=("serial", "threads", "processes", "supervised"),
        help="default phase-2 executor for requests that don't name one",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="forked engine worker processes behind the front (the "
        "sharded serving tier; 1 = the in-process single-engine path)",
    )
    p_serve.add_argument(
        "--backend-workers",
        type=int,
        default=2,
        help="default worker count for the non-serial phase-2 "
        "backends (per engine)",
    )
    p_serve.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.5,
        help="seconds between worker heartbeats; stale beats plus a "
        "blown deadline get a worker SIGKILLed and respawned",
    )
    p_serve.add_argument(
        "--max-worker-restarts",
        type=int,
        default=3,
        help="respawns allowed per worker slot before it is lost and "
        "its session budget rebalances onto the survivors",
    )
    p_serve.add_argument(
        "--journal",
        default=None,
        help="crash-safe request journal path (NDJSON, fsync'd "
        "appends); the drain report reconciles accepted = "
        "completed + shed against it",
    )
    p_serve.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="admitted requests allowed in flight at once; excess is "
        "shed with exit code 17 instead of queueing unboundedly",
    )
    p_serve.add_argument(
        "--max-sessions",
        type=int,
        default=8,
        help="warm graph sessions to cache (LRU beyond this evicts)",
    )
    p_serve.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        help="refuse requests whose estimated peak memory exceeds "
        "this (cost-model admission check, exit code 18)",
    )
    p_serve.add_argument(
        "--soft-limit-mb",
        type=float,
        default=None,
        help="RSS above this evicts warm pools/sessions (memory "
        "governor pressure relief)",
    )
    p_serve.add_argument(
        "--hard-limit-mb",
        type=float,
        default=None,
        help="RSS above this (after relief) refuses admission "
        "instead of risking the OOM killer",
    )
    p_serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        help="default per-request deadline in seconds, propagated "
        "into phase deadlines (a request's 'deadline' field wins)",
    )
    p_serve.add_argument(
        "--retries",
        type=int,
        default=3,
        help="total attempts per request for transient failures",
    )
    p_serve.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        help="base retry backoff in seconds",
    )
    p_serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive transient failures that trip a backend's "
        "circuit breaker (traffic then degrades supervised -> "
        "processes -> serial)",
    )
    p_serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        help="seconds an open breaker waits before allowing a probe",
    )
    p_serve.add_argument(
        "--socket",
        default=None,
        help="serve one JSON request per connection on this Unix "
        "socket path instead of stdin/stdout",
    )
    p_serve.add_argument(
        "--preload",
        default=None,
        help="comma-separated dataset names (or edge-list paths) to "
        "load into warm sessions before serving",
    )
    p_serve.add_argument(
        "--scale",
        type=float,
        default=None,
        help="surrogate scale factor for --preload datasets",
    )
    p_serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help="drain and exit after this many run requests (CI smokes)",
    )
    p_serve.add_argument(
        "--report",
        default=None,
        help="write the final service stats report here (atomic) "
        "when draining",
    )
    p_serve.add_argument(
        "--fault-plan",
        default=None,
        help="inject service-level faults at the per-request "
        "boundary ('kind@index[:stage]' list or JSON spec; index = "
        "admission sequence number) — chaos drills for the retry "
        "path and circuit breaker",
    )
    p_serve.add_argument(
        "--no-checksums",
        action="store_true",
        help="disable the block-CRC integrity sidecars over warm "
        "session arrays (on by default)",
    )
    p_serve.add_argument(
        "--on-corruption",
        default="quarantine",
        choices=("quarantine", "fail"),
        help="response to detected corruption: 'quarantine' evicts "
        "the session and retries from source (default), 'fail' "
        "answers the request typed with exit code 20",
    )
    p_serve.add_argument(
        "--audit-rate",
        type=float,
        default=0.0,
        help="fraction of completed requests re-executed on the "
        "serial reference path by the background self-auditor; a CRC "
        "mismatch quarantines the session and marks the serving "
        "backend suspect (0 = off)",
    )
    p_serve.add_argument(
        "--audit-seed",
        type=int,
        default=0,
        help="seed for the auditor's deterministic request sample",
    )
    p_serve.add_argument(
        "--compact-ratio",
        type=float,
        default=None,
        help="delta-log size (as a fraction of the base edge count) "
        "past which a mutable session's overlay compacts into a fresh "
        "base CSR (default: the graph layer's 0.25)",
    )
    p_serve.add_argument(
        "--damage-threshold",
        type=float,
        default=None,
        help="component-size fraction of the graph past which an "
        "intra-SCC delete falls back to one full recompute instead of "
        "the restricted FW-BW split (default: the engine's 0.5)",
    )
    p_serve.add_argument(
        "--read-deadline",
        type=float,
        default=30.0,
        help="socket transport: seconds a connection may take to "
        "deliver its newline-terminated request before it is dropped "
        "and counted as a transport error (slow-loris guard)",
    )
    p_serve.add_argument(
        "--max-line-bytes",
        type=int,
        default=1 << 20,
        help="socket transport: request line length cap in bytes; "
        "over-length requests are answered with a typed error and "
        "counted as transport errors",
    )

    p_stream = sub.add_parser(
        "stream",
        help="consume a live edge feed into incremental SCC "
        "maintenance (resumable via checkpointed watermarks)",
        parents=[kernel_parent],
    )
    p_stream.add_argument(
        "graph",
        help="base graph: surrogate dataset name or edge-list path",
    )
    p_stream.add_argument(
        "--source",
        required=True,
        help="feed spec: tail:<path> (follow a growing file), "
        "tail-once:<path> (read to EOF), socket:<path> (Unix), "
        "tcp:<host>:<port>, or pipe:- (stdin)",
    )
    p_stream.add_argument(
        "--connect",
        default=None,
        help="apply batches through a serve daemon on this Unix "
        "socket (one update request per batch) instead of an "
        "in-process engine",
    )
    p_stream.add_argument(
        "--checkpoint",
        default=None,
        help="CRC-guarded watermark file: a killed consumer restarted "
        "with the same path resumes without re-applying committed "
        "edits",
    )
    p_stream.add_argument(
        "--scale",
        type=float,
        default=None,
        help="surrogate scale factor for dataset graphs",
    )
    p_stream.add_argument(
        "--on-error",
        default="skip",
        choices=("strict", "repair", "skip"),
        help="malformed-record policy for the feed (default 'skip': "
        "garbage is counted and dropped, never a crashed consumer)",
    )
    p_stream.add_argument(
        "--batch-edges",
        type=int,
        default=512,
        help="flush a batch into the engine at this many pending edits",
    )
    p_stream.add_argument(
        "--batch-age",
        type=float,
        default=0.5,
        help="flush a non-empty batch after this many seconds "
        "(freshness bound for slow feeds)",
    )
    p_stream.add_argument(
        "--dedup-window",
        type=int,
        default=1024,
        help="seq-keyed duplicate-suppression window for "
        "at-least-once feeds (0 disables)",
    )
    p_stream.add_argument(
        "--max-reconnects",
        type=int,
        default=8,
        help="redials allowed before the feed fails typed (exit 21)",
    )
    p_stream.add_argument(
        "--read-timeout",
        type=float,
        default=1.0,
        help="per-read deadline on socket feeds, seconds",
    )
    p_stream.add_argument(
        "--stall-timeout",
        type=float,
        default=None,
        help="watchdog: seconds of peer silence before the feed is "
        "declared stalled and redialed",
    )
    p_stream.add_argument(
        "--degrade-log-ratio",
        type=float,
        default=None,
        help="compaction-debt budget: when the session's delta-log "
        "ratio exceeds this after a batch, degrade to one synchronous "
        "snapshot fold",
    )
    p_stream.add_argument(
        "--compact-ratio",
        type=float,
        default=None,
        help="delta-log compaction ratio for the in-process session",
    )
    p_stream.add_argument(
        "--damage-threshold",
        type=float,
        default=None,
        help="intra-SCC delete rebuild threshold for the in-process "
        "session",
    )
    p_stream.add_argument(
        "--max-batches",
        type=int,
        default=None,
        help="stop after applying this many batches (tests/benchmarks)",
    )
    p_stream.add_argument(
        "--fault-plan",
        default=None,
        help="deterministic feed chaos at the 'stream' site: "
        "'disconnect@3,stall@5,garbage@7,dup@9' — the index is the "
        "source's read sequence number",
    )
    p_stream.add_argument(
        "--stall-seconds",
        type=float,
        default=None,
        help="duration of injected 'stall' faults (default: the "
        "spec's hang_seconds)",
    )
    p_stream.add_argument(
        "--report",
        default=None,
        help="write the final consumer stats report here (atomic)",
    )

    p_dist = sub.add_parser(
        "distributed",
        help="distributed (BSP) Method 1 rank-scaling report",
        parents=[kernel_parent],
    )
    add_graph_source(p_dist)
    p_dist.add_argument(
        "--ranks",
        default="1,2,4,8",
        help="comma-separated rank counts",
    )
    p_dist.add_argument(
        "--partitioner",
        default="bfs",
        choices=("block", "hash", "bfs"),
    )
    p_dist.add_argument(
        "--fail-at",
        default=None,
        help="inject rank failures at these supersteps (comma list) "
        "and report checkpointed-recovery cost",
    )
    p_dist.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="checkpoint interval C in supersteps (0 = none; "
        "recovery then reruns from superstep 0)",
    )

    return parser


def _load_graph(args):
    from .generators import generate
    from .graph import read_edge_list

    if args.dataset:
        bundle = generate(args.dataset, scale=args.scale)
        return bundle.graph, args.dataset
    on_error = getattr(args, "on_error", "strict")
    g, report = read_edge_list(
        args.input, on_error=on_error, return_report=True
    )
    if not report.clean:
        print(f"ingest [{on_error}]: {report.summary()}", file=sys.stderr)
    return g, args.input


def _cmd_datasets(args) -> int:
    from .bench import format_table
    from .generators import DATASETS

    rows = [
        [
            spec.name,
            spec.paper.nodes,
            spec.paper.edges,
            f"{spec.paper.largest_scc_frac:.2f}",
            "yes" if spec.small_world else "no",
            spec.description,
        ]
        for spec in DATASETS.values()
    ]
    print(
        format_table(
            ["name", "paper nodes", "paper edges", "giant frac",
             "small-world", "description"],
            rows,
        )
    )
    return 0


def _cmd_scc(args) -> int:
    from .core import strongly_connected_components
    from .runtime import Machine

    g, label = _load_graph(args)
    print(f"graph {label}: {g.num_nodes} nodes, {g.num_edges} edges")
    kwargs = {}
    backend = args.backend
    if args.fault_plan and backend != "supervised":
        backend = "supervised"  # only the supervised backend recovers
    if args.method not in ("tarjan", "kosaraju", "gabow"):
        kwargs["seed"] = args.seed
        if backend != "serial":
            kwargs["backend"] = backend
            kwargs["num_threads"] = args.workers
        if args.phase2_batch and args.method in ("method1", "method2"):
            kwargs["phase2_batch"] = True
        if backend == "supervised":
            from .runtime import FaultPlan, SupervisorConfig

            try:
                plan = (
                    FaultPlan.parse(args.fault_plan)
                    if args.fault_plan
                    else None
                )
            except ValueError as exc:
                print(f"error: bad --fault-plan: {exc}", file=sys.stderr)
                return 2
            kwargs["supervisor"] = SupervisorConfig(
                task_timeout=args.task_timeout,
                max_task_retries=args.max_task_retries,
                fault_plan=plan,
            )
    result = strongly_connected_components(g, args.method, **kwargs)
    print(f"method: {args.method}")
    if args.certify:
        from .integrity import certify_result

        cert = certify_result(
            g, result.labels, level=args.certify, seed=args.seed
        )
        proved = sum(1 for p in cert["sampled"] if p["proved"])
        extra = (
            ", Tarjan cross-checked" if cert["tarjan_checked"] else ""
        )
        print(
            f"certificate [{cert['level']}]: ok, "
            f"labels crc32={cert['labels_crc32']:#010x}, "
            f"{proved}/{len(cert['sampled'])} sampled SCC(s) proved"
            f"{extra}"
        )
    if args.method not in ("tarjan", "kosaraju", "gabow"):
        from .kernels import backend_info

        info = backend_info()
        jit = " (jit)" if info["jit_active"] else ""
        print(f"kernels: {info['resolved']}{jit}")
    print(f"SCCs: {result.num_sccs}")
    print(
        f"largest SCC: {result.largest_scc_size()} "
        f"({result.giant_fraction():.1%})"
    )
    fractions = result.phase_fractions()
    if fractions:
        parts = ", ".join(
            f"{k}={v:.1%}" for k, v in fractions.items() if v > 0
        )
        print(f"resolved per phase: {parts}")
    if backend == "supervised" and result.profile is not None:
        recovery = {
            k[len("supervisor_"):]: int(v)
            for k, v in sorted(result.profile.counters.items())
            if k.startswith("supervisor_")
        }
        status = "recovered" if recovery else "clean"
        detail = (
            " (" + ", ".join(f"{k}={v}" for k, v in recovery.items()) + ")"
            if recovery
            else ""
        )
        print(f"supervised run: {status}{detail}; labels verified")
    if result.profile is not None:
        machine = Machine()
        sim = machine.simulate(result.profile.trace, args.threads)
        print(
            f"simulated time @{args.threads} threads: "
            f"{sim.total_time:.0f} edge-units"
        )
    return 0


def _cmd_run(args) -> int:
    from .runtime import Machine
    from .runtime.lifecycle import RunHarness

    if args.resume:
        overrides = {}
        if args.backend is not None:
            overrides["backend"] = args.backend
        if args.workers is not None:
            overrides["num_threads"] = args.workers
        if args.phase_timeout is not None:
            overrides["phase_timeout"] = args.phase_timeout
        harness = RunHarness.from_checkpoint(args.resume, **overrides)
        result = harness.resume(args.resume)
        label = args.resume
    else:
        g, label = _load_graph(args)
        print(f"graph {label}: {g.num_nodes} nodes, {g.num_edges} edges")
        harness = RunHarness(
            args.method,
            seed=args.seed,
            checkpoint_dir=args.checkpoint_dir,
            phase_timeout=args.phase_timeout,
            backend=args.backend or "serial",
            num_threads=args.workers if args.workers is not None else 2,
        )
        result = harness.run(g)

    report = harness.report
    print(f"method: {report.method}")
    if report.resumed_from:
        picked_up = report.resumed_phase or "complete (verified only)"
        print(f"resumed from: {report.resumed_from}")
        print(f"picked up at phase: {picked_up}")
    print(f"phases run: {', '.join(report.phases_run) or '(none)'}")
    if report.checkpoints:
        import os

        print(
            f"checkpoints: {len(report.checkpoints)} written to "
            f"{os.path.dirname(report.checkpoints[-1])}"
        )
    if report.degradations:
        print(
            f"backend degraded {report.degradations}x "
            f"-> {report.degraded_to}"
        )
    gate = (
        "labels verified (Tarjan cross-check)"
        if report.cross_checked
        else "labels verified"
    )
    print(gate)
    print(f"SCCs: {result.num_sccs}")
    print(
        f"largest SCC: {result.largest_scc_size()} "
        f"({result.giant_fraction():.1%})"
    )
    if result.profile is not None:
        sim = Machine().simulate(result.profile.trace, args.threads)
        scope = " (resumed portion)" if report.resumed_from else ""
        print(
            f"simulated time @{args.threads} threads: "
            f"{sim.total_time:.0f} edge-units{scope}"
        )
    return 0


def _cmd_batch(args) -> int:
    from .engine import Engine, load_manifest, run_batch

    try:
        jobs = load_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    fault_plan = None
    if args.fault_plan:
        import dataclasses

        from .runtime import FaultPlan

        try:
            parsed = FaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            print(f"error: bad --fault-plan: {exc}", file=sys.stderr)
            return 2
        # This flag injects at the per-job boundary; the parser's
        # default site is the task kernel, so pin every spec to "job"
        # (per-task injection belongs in a job's own fault_plan field).
        # "phase"-site corrupt specs — the only legal site for
        # run-owned labels/color — keep their site and fire at phase
        # boundaries inside every job's run.
        fault_plan = FaultPlan(
            s
            if s.kind == "corrupt" and s.site == "phase"
            else dataclasses.replace(s, site="job")
            for s in parsed.specs
        )

    if args.job_timeout is not None:
        import dataclasses

        jobs = [
            dataclasses.replace(job, timeout=args.job_timeout)
            if job.timeout is None
            else job
            for job in jobs
        ]
    if args.certify is not None:
        import dataclasses

        jobs = [
            dataclasses.replace(job, certify=args.certify)
            if job.certify is None
            else job
            for job in jobs
        ]
    retry = None
    if args.retries > 1:
        from .service import RetryPolicy

        retry = RetryPolicy(
            max_attempts=args.retries, backoff_base=args.backoff
        )

    def progress(rec) -> None:
        if rec.ok:
            status = f"ok  sccs={rec.num_sccs}"
        elif rec.shed:
            status = f"SHED({rec.exit_code}) {rec.error}"
        else:
            status = f"FAIL({rec.exit_code}) {rec.error_type}: {rec.error}"
        warm = " warm" if rec.warm else ""
        tries = f" attempts={rec.attempts}" if rec.attempts > 1 else ""
        print(
            f"[{rec.index + 1}/{len(jobs)}] {rec.label}: {status} "
            f"({rec.seconds:.2f}s{warm}{tries})"
        )

    with Engine(integrity=not args.no_checksums) as engine:
        report = run_batch(
            engine,
            jobs,
            fault_plan=fault_plan,
            retry=retry,
            progress=progress,
        )
    shed = f", {report.jobs_shed} shed" if report.jobs_shed else ""
    certified = (
        f", {report.certificates_issued} certified"
        if report.certificates_issued
        else ""
    )
    print(
        f"batch: {report.jobs_ok}/{report.jobs_total} ok{shed}"
        f"{certified} in "
        f"{report.seconds:.2f}s over {len(report.sessions)} session(s)"
    )
    if args.output:
        report.write(args.output)
        print(f"report: {args.output}")
    return report.first_failure_code


def _cmd_serve(args) -> int:
    from .service import (
        AdmissionConfig,
        GovernorConfig,
        RetryPolicy,
        SCCService,
        ServiceConfig,
    )
    from .service.server import serve_socket, serve_stdin

    fault_plan = None
    if args.fault_plan:
        import dataclasses

        from .runtime import FaultPlan

        try:
            parsed = FaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            print(f"error: bad --fault-plan: {exc}", file=sys.stderr)
            return 2
        # This flag injects at the per-request boundary (index = the
        # request's admission sequence number).  "phase"-site corrupt
        # specs — the only legal site for run-owned labels/color —
        # keep their site and fire inside every request's run.
        fault_plan = FaultPlan(
            s
            if s.kind == "corrupt" and s.site == "phase"
            else dataclasses.replace(s, site="request")
            for s in parsed.specs
        )
    governor = None
    if args.soft_limit_mb is not None or args.hard_limit_mb is not None:
        governor = GovernorConfig(
            soft_limit_bytes=(
                int(args.soft_limit_mb * 1e6)
                if args.soft_limit_mb is not None
                else None
            ),
            hard_limit_bytes=(
                int(args.hard_limit_mb * 1e6)
                if args.hard_limit_mb is not None
                else None
            ),
            min_sessions=1,
        )
    config = ServiceConfig(
        backend=args.backend,
        workers=args.backend_workers,
        max_sessions=args.max_sessions,
        worker_processes=args.workers,
        heartbeat_interval=args.heartbeat_interval,
        max_worker_restarts=args.max_worker_restarts,
        journal_path=args.journal,
        admission=AdmissionConfig(
            max_queue=args.max_queue,
            memory_budget_bytes=(
                int(args.memory_budget_mb * 1e6)
                if args.memory_budget_mb is not None
                else None
            ),
        ),
        retry=RetryPolicy(
            max_attempts=args.retries, backoff_base=args.backoff
        ),
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        governor=governor,
        default_deadline=args.request_timeout,
        checksums=not args.no_checksums,
        on_corruption=args.on_corruption,
        audit_rate=args.audit_rate,
        audit_seed=args.audit_seed,
        compact_ratio=args.compact_ratio,
        damage_threshold=args.damage_threshold,
    )
    with SCCService(config, fault_plan=fault_plan) as service:
        if args.preload:
            for source in args.preload.split(","):
                source = source.strip()
                if not source:
                    continue
                sess = service.engine.load(source, scale=args.scale)
                sess.warmup()
                print(
                    f"preloaded {source}: {sess.graph.num_nodes} nodes, "
                    f"{sess.graph.num_edges} edges",
                    file=sys.stderr,
                )
        if args.socket:
            print(
                f"serving on unix socket {args.socket}", file=sys.stderr
            )
            return serve_socket(
                service,
                args.socket,
                max_requests=args.max_requests,
                report_path=args.report,
                read_deadline=args.read_deadline,
                max_line_bytes=args.max_line_bytes,
            )
        return serve_stdin(
            service,
            in_stream=sys.stdin,
            out_stream=sys.stdout,
            max_requests=args.max_requests,
            report_path=args.report,
        )


class _DaemonApplier:
    """Apply stream batches through a serve daemon's Unix socket.

    One connection per batch (the socket transport's contract);
    shed/refused responses come back as ``ok=False`` dicts the
    consumer's backpressure loop understands.
    """

    def __init__(self, path, graph, scale, on_error) -> None:
        self.path = path
        self.graph = graph
        self.scale = scale
        self.on_error = on_error

    def _send(self, request: dict) -> dict:
        import socket as socketlib

        try:
            with socketlib.socket(
                socketlib.AF_UNIX, socketlib.SOCK_STREAM
            ) as s:
                s.settimeout(60.0)
                s.connect(self.path)
                s.sendall((json.dumps(request) + "\n").encode())
                buf = bytearray()
                while b"\n" not in buf:
                    chunk = s.recv(1 << 16)
                    if not chunk:
                        break
                    buf += chunk
        except OSError as exc:
            # daemon gone mid-stream: surface as a shed so the
            # consumer's backpressure loop retries under backoff.
            return {
                "ok": False,
                "error": f"daemon unreachable: {exc}",
                "error_type": "ServiceOverloadError",
            }
        if not buf:
            return {
                "ok": False,
                "error": "daemon closed the connection",
                "error_type": "ServiceOverloadError",
            }
        return json.loads(bytes(buf).decode())

    def _request(self, **fields) -> dict:
        req = {"op": "update", "graph": self.graph}
        if self.scale is not None:
            req["scale"] = self.scale
        if self.on_error is not None:
            req["on_error"] = self.on_error
        req.update(fields)
        return req

    def apply_batch(self, inserts, deletes) -> dict:
        return self._send(
            self._request(
                inserts=[list(e) for e in inserts],
                deletes=[list(e) for e in deletes],
            )
        )

    def compact(self) -> dict:
        return self._send(self._request(compact=True))


def _cmd_stream(args) -> int:
    from .ingest.checkpoint import StreamCheckpoint
    from .ingest.consumer import EngineApplier, StreamConsumer
    from .ingest.sources import open_source

    fault_plan = None
    if args.fault_plan:
        import dataclasses

        from .runtime import FaultPlan
        from .runtime.faults import NETWORK_KINDS

        try:
            parsed = FaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            print(f"error: bad --fault-plan: {exc}", file=sys.stderr)
            return 2
        # network-kind specs fire inside the source at the "stream"
        # site (index = the source's read sequence number).
        fault_plan = FaultPlan(
            dataclasses.replace(
                s,
                site="stream",
                hang_seconds=(
                    args.stall_seconds
                    if args.stall_seconds is not None
                    else s.hang_seconds
                ),
            )
            if s.kind in NETWORK_KINDS
            else s
            for s in parsed.specs
        )
    source_kwargs = {
        "fault_plan": fault_plan,
        "max_reconnects": args.max_reconnects,
        "read_timeout": args.read_timeout,
    }
    if args.stall_timeout is not None:
        # only override the transport's own watchdog default when the
        # operator asked for one.
        source_kwargs["stall_timeout"] = args.stall_timeout
    source = open_source(args.source, **source_kwargs)
    engine = None
    if args.connect:
        applier = _DaemonApplier(
            args.connect, args.graph, args.scale, args.on_error
        )
    else:
        from .engine import Engine

        engine = Engine(backend="serial")
        target = args.graph
        if args.scale is not None:
            # resolve the surrogate once so every batch hits the same
            # warm session.
            target = engine.load(args.graph, scale=args.scale)
        applier = EngineApplier(
            engine,
            target,
            compact_ratio=args.compact_ratio,
            damage_threshold=args.damage_threshold,
        )
    consumer = StreamConsumer(
        source,
        applier,
        on_error=args.on_error,
        dedup_window=args.dedup_window,
        checkpoint=(
            StreamCheckpoint(args.checkpoint)
            if args.checkpoint
            else None
        ),
        batch_edges=args.batch_edges,
        batch_age=args.batch_age,
        degrade_log_ratio=args.degrade_log_ratio,
        max_batches=args.max_batches,
    )
    try:
        stats = consumer.run()
    finally:
        source.close()
        if engine is not None:
            engine.close()
    if args.report:
        from .ioutil import atomic_path

        with atomic_path(args.report, suffix=".json") as tmp:
            with open(tmp, "w") as fh:
                json.dump(stats, fh, indent=2, sort_keys=True)
                fh.write("\n")
    lag = stats["freshness_lag"]
    print(
        f"stream {args.source}: {stats['records_applied']} records in "
        f"{stats['batches']} batches"
        + (
            f" (skipped {stats['records_skipped_committed']} committed)"
            if stats["records_skipped_committed"]
            else ""
        )
        + f"; version={stats['graph_version']} "
        f"crc={stats['labels_crc32']} "
        f"lag mean/p95 {lag['mean'] * 1e3:.1f}/{lag['p95'] * 1e3:.1f} ms",
        file=sys.stderr,
    )
    return 0


def _cmd_sweep(args) -> int:
    from .bench import format_speedup_table, speedup_series
    from .runtime import STANDARD_THREAD_COUNTS

    g, label = _load_graph(args)
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    series, _ = speedup_series(g, methods=methods)
    print(format_speedup_table(label, STANDARD_THREAD_COUNTS, series))
    return 0


def _cmd_info(args) -> int:
    from .analysis import (
        classify_graph,
        degree_statistics,
        summarize_scc_structure,
    )
    from .core import tarjan_scc

    g, label = _load_graph(args)
    print(f"graph {label}: {g.num_nodes} nodes, {g.num_edges} edges")
    summary = summarize_scc_structure(tarjan_scc(g))
    print(f"SCCs: {summary.num_sccs} (largest {summary.largest_scc}, "
          f"{summary.giant_fraction:.1%}; {summary.trivial_sccs} trivial, "
          f"{summary.mid_sccs} mid-size)")
    report = classify_graph(g)
    print(f"sampled diameter: {report.diameter_estimate} "
          f"(log2 N = {report.log2_n:.1f}) -> "
          f"small-world: {report.small_world}")
    deg = degree_statistics(g)
    print(f"degrees: mean out {deg.mean_out:.1f}, max out {deg.max_out}, "
          f"skew {deg.skew:.0f}x, power-law alpha {deg.alpha:.2f}")
    return 0


def _cmd_distributed(args) -> int:
    from .bench import format_table
    from .distributed import (
        Cluster,
        bfs_partition,
        block_partition,
        distributed_method1,
        edge_cut,
        hash_partition,
    )

    g, label = _load_graph(args)
    print(f"graph {label}: {g.num_nodes} nodes, {g.num_edges} edges")

    def make_partition(ranks: int):
        if args.partitioner == "block":
            return block_partition(g.num_nodes, ranks)
        if args.partitioner == "hash":
            return hash_partition(g.num_nodes, ranks, rng=0)
        return bfs_partition(g, ranks)

    cluster = Cluster()
    rows = []
    base = None
    for ranks in (int(r) for r in args.ranks.split(",")):
        part = make_partition(ranks)
        res = distributed_method1(g, part)
        sim = cluster.simulate(res.dtrace)
        base = base or sim.total_time
        rows.append(
            [
                ranks,
                f"{base / sim.total_time:.2f}",
                f"{sim.comm_fraction:.0%}",
                edge_cut(g, part),
                len(res.dtrace.steps),
            ]
        )
    print(
        format_table(
            ["ranks", "speedup", "comm", "edge cut", "supersteps"],
            rows,
            title=f"distributed method1 (+WCC), {args.partitioner} partition",
        )
    )
    if args.fail_at:
        from .distributed import CheckpointPolicy, RankFailure

        failures = [
            RankFailure(superstep=int(s))
            for s in args.fail_at.split(",")
            if s.strip()
        ]
        policy = CheckpointPolicy(every=args.checkpoint_every)
        # res/part refer to the largest rank count from the sweep above
        faulty = cluster.simulate_with_failures(
            res.dtrace, failures, policy
        )
        dropped = len(failures) - faulty.failures
        if dropped:
            print(
                f"note: {dropped} --fail-at superstep(s) beyond the "
                f"trace ({len(res.dtrace.steps)} supersteps) were ignored"
            )
        print(
            f"rank-failure replay @{faulty.base.num_ranks} ranks: "
            f"{faulty.failures} failure(s), "
            f"checkpoint every {args.checkpoint_every or 'never'}: "
            f"overhead {faulty.overhead:.2f}x "
            f"(recompute {faulty.recompute_time:.0f}, "
            f"checkpoints {faulty.checkpoint_time:.0f}, "
            f"restart {faulty.restart_time:.0f} edge-units)"
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.kernels is not None:
        from .kernels import set_backend

        set_backend(args.kernels)
    handlers = {
        "datasets": _cmd_datasets,
        "scc": _cmd_scc,
        "sweep": _cmd_sweep,
        "batch": _cmd_batch,
        "serve": _cmd_serve,
        "stream": _cmd_stream,
        "info": _cmd_info,
        "run": _cmd_run,
        "distributed": _cmd_distributed,
    }
    from .errors import ReproError, exit_code_for

    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
