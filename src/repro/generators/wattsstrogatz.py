"""Directed Watts–Strogatz small-world generator.

Watts & Strogatz [29 in the paper] showed that rewiring only a few
edges of a ring lattice collapses its diameter — the paper leans on
this to argue *why* real graphs are small-world.  This directed variant
is used by tests and examples to sweep the rewiring probability ``p``
and watch the diameter (and with it, BFS level counts) collapse.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph, from_edge_array
from .util import as_rng

__all__ = ["watts_strogatz_graph"]


def watts_strogatz_graph(
    n: int,
    k: int,
    p: float,
    *,
    rng: np.random.Generator | int | None = None,
) -> CSRGraph:
    """Directed ring lattice with random rewiring.

    Each node ``i`` gets out-edges to its ``k`` clockwise successors
    ``i+1 .. i+k`` (mod ``n``); each edge's destination is rewired to a
    uniform random node with probability ``p``.  At ``p = 0`` the graph
    is one big SCC with diameter ``~n/k``; small ``p`` keeps it strongly
    connected (w.h.p.) while the diameter drops to ``O(log n)``.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if k < 1 or k >= n:
        raise ValueError("need 1 <= k < n")
    if not (0.0 <= p <= 1.0):
        raise ValueError("p must be in [0, 1]")
    rng = as_rng(rng)
    src = np.repeat(np.arange(n, dtype=np.int64), k)
    shift = np.tile(np.arange(1, k + 1, dtype=np.int64), n)
    dst = (src + shift) % n
    rewire = rng.random(src.shape[0]) < p
    dst = np.where(rewire, rng.integers(0, n, src.shape[0]), dst)
    return from_edge_array(src, dst, n, dedup=True, drop_self_loops=True)
