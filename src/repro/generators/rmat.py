"""R-MAT (recursive matrix) scale-free directed graph generator.

Chakrabarti et al.'s R-MAT model is the standard synthetic stand-in for
web/social graphs (it is also the Graph500 generator referenced in
Section 4.2).  Each edge picks one of four adjacency-matrix quadrants
per recursion level with probabilities ``(a, b, c, d)``; skewed
probabilities yield the scale-free degree distribution (Section 4.3's
"a few nodes have a huge number of neighbors").

Edge generation is fully vectorized: all ``m`` edges walk the
``scale`` recursion levels simultaneously, one vectorized Bernoulli
draw per level.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph, from_edge_array
from .util import as_rng

__all__ = ["rmat_graph", "rmat_edges"]


def rmat_edges(
    scale: int,
    avg_degree: float,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    noise: float = 0.1,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate raw R-MAT edges over ``2**scale`` nodes.

    ``a + b + c`` must be < 1; ``d = 1 - a - b - c``.  ``noise``
    perturbs the quadrant probabilities per level (the standard
    "smoothing" that avoids exact self-similarity artifacts).
    Returns ``(src, dst)`` with duplicates and self-loops retained.
    """
    if scale < 0:
        raise ValueError("scale must be non-negative")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be non-negative")
    rng = as_rng(rng)
    n = 1 << scale
    m = int(round(n * avg_degree))
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        bit = np.int64(1 << (scale - level - 1))
        # jitter quadrant probabilities per level
        if noise > 0.0:
            jitter = 1.0 + noise * (rng.random(4) - 0.5)
            pa, pb, pc, pd = np.array([a, b, c, d]) * jitter
            s = pa + pb + pc + pd
            pa, pb, pc = pa / s, pb / s, pc / s
        else:
            pa, pb, pc = a, b, c
        u = rng.random(m)
        go_right = u >= (pa + pc)  # quadrants b, d set the column bit
        go_down = (u >= pa) & (u < pa + pc) | (u >= pa + pb + pc)
        src += bit * go_down
        dst += bit * go_right
    return src, dst


def rmat_graph(
    scale: int,
    avg_degree: float,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    noise: float = 0.1,
    rng: np.random.Generator | int | None = None,
) -> CSRGraph:
    """R-MAT digraph over ``2**scale`` nodes (deduped, no self-loops)."""
    src, dst = rmat_edges(
        scale, avg_degree, a=a, b=b, c=c, noise=noise, rng=rng
    )
    return from_edge_array(
        src, dst, 1 << scale, dedup=True, drop_self_loops=True
    )
