"""Synthetic graph generators used as dataset surrogates.

See DESIGN.md §2: the paper's multi-million-node public datasets are
replaced by scaled-down synthetic graphs that preserve the structural
properties the algorithms respond to (giant-SCC fraction, power-law
small-SCC tail, diameter regime, acyclicity, random orientation).
"""

from .sccstruct import SCCStructureSpec, PlantedGraph, scc_structured_graph
from .rmat import rmat_graph, rmat_edges
from .wattsstrogatz import watts_strogatz_graph
from .road import road_grid_graph, grid_undirected_edges
from .dag import citation_dag
from .datasets import (
    DATASETS,
    DatasetSpec,
    GraphBundle,
    PaperStats,
    dataset_names,
    generate,
    scale_from_env,
)

__all__ = [
    "SCCStructureSpec",
    "PlantedGraph",
    "scc_structured_graph",
    "rmat_graph",
    "rmat_edges",
    "watts_strogatz_graph",
    "road_grid_graph",
    "grid_undirected_edges",
    "citation_dag",
    "DATASETS",
    "DatasetSpec",
    "GraphBundle",
    "PaperStats",
    "dataset_names",
    "generate",
    "scale_from_env",
]
