"""Road-network surrogate: randomly oriented planar grid.

CA-road is the paper's deliberate counterexample — (almost) planar,
diameter ~850, many mid-sized SCCs — on which both methods lose to
Tarjan (Section 5).  A 2-D grid with each undirected edge oriented
uniformly at random, with a fraction of edges deleted, reproduces all
three traits: huge diameter, no scale-free skew, and a broad spectrum
of non-trivial SCC sizes created by the random orientation.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph
from ..graph.orient import orient_undirected
from .util import as_rng

__all__ = ["road_grid_graph", "grid_undirected_edges"]


def grid_undirected_edges(
    width: int, height: int
) -> tuple[np.ndarray, np.ndarray]:
    """Undirected 4-neighbour grid edges; node ``(r, c)`` has id ``r*width + c``."""
    if width < 1 or height < 1:
        raise ValueError("grid dimensions must be positive")
    ids = np.arange(width * height, dtype=np.int64).reshape(height, width)
    right_src = ids[:, :-1].ravel()
    right_dst = ids[:, 1:].ravel()
    down_src = ids[:-1, :].ravel()
    down_dst = ids[1:, :].ravel()
    return (
        np.concatenate([right_src, down_src]),
        np.concatenate([right_dst, down_dst]),
    )


def road_grid_graph(
    width: int,
    height: int,
    *,
    keep_prob: float = 1.0,
    p_both: float = 0.285,
    rng: np.random.Generator | int | None = None,
) -> CSRGraph:
    """Randomly oriented grid road-network surrogate.

    ``keep_prob`` < 1 perforates the grid (real road networks are not
    complete grids).  ``p_both`` is the reciprocal-pair probability of
    the orientation step; a 2-D grid sits near its directed-percolation
    threshold, and ``p_both = 0.285`` is calibrated (at the registry's
    300x65 base dimensions) so the largest SCC holds ~0.6 of the nodes
    with hundreds of mid-sized SCCs — the CA-road shape in Table 1 /
    Figure 9.  The elongated aspect ratio keeps the diameter in the
    many-hundreds regime that defeats level-synchronous BFS
    (Section 5).
    """
    if not (0.0 < keep_prob <= 1.0):
        raise ValueError("keep_prob must be in (0, 1]")
    rng = as_rng(rng)
    src, dst = grid_undirected_edges(width, height)
    if keep_prob < 1.0:
        keep = rng.random(src.shape[0]) < keep_prob
        src, dst = src[keep], dst[keep]
    return orient_undirected(
        src, dst, width * height, p_both=p_both, rng=rng
    )
