"""SCC-structured small-world graph generator with planted ground truth.

Section 2.2 of the paper identifies the SCC structure of real-world
graphs: one giant SCC of size O(N), a power-law tail of small SCCs
(size-1 SCCs most frequent), and the small SCCs attached *around* the
giant one (the Broder et al. bow-tie).  This generator plants exactly
that structure:

1. Components are drawn first — one giant of ``giant_frac * n`` nodes,
   ``trivial_frac`` of the remainder as size-1 SCCs, the rest with
   power-law sizes in ``[2, max_small]``.
2. Every component of size >= 2 gets an internal Hamiltonian cycle
   (guaranteeing strong connectivity) plus random internal chords
   (giving the giant SCC an O(log N) diameter — the small-world
   rewiring effect of Watts & Strogatz).
3. Every component receives a continuous *rank*; the giant sits at
   rank 0.5, IN-side components below, OUT-side above.  Inter-component
   edges always point from lower rank to higher rank, so the component
   DAG is acyclic **by construction** and the planted components are
   exactly the SCCs of the generated graph.
4. Optional size-2 chains (``chain2_pairs``) reproduce the weakly
   connected chains of 2-cycles that motivate Trim2 (Section 3.4).

Because the SCC decomposition is known exactly, the generator doubles
as a correctness oracle for every algorithm in :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph import CSRGraph, from_edge_array
from .util import as_rng, sample_power_law_sizes, segmented_uniform

__all__ = ["SCCStructureSpec", "PlantedGraph", "scc_structured_graph"]


@dataclass(frozen=True)
class SCCStructureSpec:
    """Knobs for :func:`scc_structured_graph`.

    Attributes
    ----------
    n: total node count (approximate to within rounding).
    giant_frac: fraction of nodes in the giant SCC (0 disables it).
    trivial_frac: fraction of the *non-giant* nodes that are size-1 SCCs.
    alpha: power-law exponent of non-trivial small SCC sizes.
    max_small: largest allowed small SCC size.
    giant_chords: expected extra out-edges per giant-SCC node (beyond
        the Hamiltonian cycle); controls giant density and diameter.
    small_chords: same for small SCCs of size >= 3.
    attach_lambda: expected attachment edges per non-giant component
        is ``1 + Poisson(attach_lambda)``.
    giant_bias: probability an attachment edge partners with the giant
        (vs. a random other component); high bias yields the paper's
        "small SCCs attached around the giant" picture.
    disconnect_frac: fraction of components left with no attachment
        edges at all (the bow-tie's disconnected islands).
    chain2_pairs: number of 2-cycle pairs arranged into weak chains
        (Trim2 fodder); drawn from the trivial budget.
    chain2_len: length (in components) of each 2-cycle chain.
    permute: randomly relabel nodes so component structure is not
        readable from node-id order.
    """

    n: int
    giant_frac: float = 0.6
    trivial_frac: float = 0.7
    alpha: float = 2.3
    max_small: int = 256
    giant_chords: float = 2.0
    small_chords: float = 0.8
    attach_lambda: float = 1.2
    giant_bias: float = 0.65
    disconnect_frac: float = 0.02
    chain2_pairs: int = 0
    chain2_len: int = 8
    permute: bool = True

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be positive")
        if not (0.0 <= self.giant_frac <= 1.0):
            raise ValueError("giant_frac must be in [0, 1]")
        if not (0.0 <= self.trivial_frac <= 1.0):
            raise ValueError("trivial_frac must be in [0, 1]")
        if self.alpha <= 1.0:
            raise ValueError("alpha must exceed 1 for a proper tail")
        if self.max_small < 2:
            raise ValueError("max_small must be >= 2")


@dataclass
class PlantedGraph:
    """A generated graph together with its ground-truth SCC structure."""

    graph: CSRGraph
    #: component id per node; components ARE the true SCCs.
    labels: np.ndarray
    #: size of each component, indexed by component id.
    comp_sizes: np.ndarray
    #: component id of the giant SCC, or -1 when giant_frac == 0.
    giant_comp: int
    spec: SCCStructureSpec = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def num_components(self) -> int:
        return int(self.comp_sizes.shape[0])


def _component_sizes(
    spec: SCCStructureSpec, rng: np.random.Generator
) -> tuple[np.ndarray, int, int]:
    """Draw component sizes; returns (sizes, giant_comp, n_chain2_comps)."""
    giant = int(round(spec.n * spec.giant_frac))
    if giant == spec.n and spec.giant_frac < 1.0:
        giant = spec.n - 1
    rest = spec.n - giant
    chain2_nodes = min(2 * spec.chain2_pairs, max(rest - 1, 0) // 2 * 2)
    n_chain2 = chain2_nodes // 2
    rest -= chain2_nodes
    n_triv = int(round(rest * spec.trivial_frac))
    nontriv_budget = rest - n_triv
    if nontriv_budget == 1:
        n_triv += 1
        nontriv_budget = 0
    small_sizes = sample_power_law_sizes(
        rng, nontriv_budget, alpha=spec.alpha, lo=2, hi=spec.max_small
    )
    parts = []
    if giant > 0:
        parts.append(np.array([giant], dtype=np.int64))
    parts.append(np.full(n_chain2, 2, dtype=np.int64))
    parts.append(np.ones(n_triv, dtype=np.int64))
    parts.append(small_sizes)
    sizes = np.concatenate(parts) if parts else np.empty(0, np.int64)
    giant_comp = 0 if giant > 0 else -1
    return sizes, giant_comp, n_chain2


def scc_structured_graph(
    spec: SCCStructureSpec,
    rng: np.random.Generator | int | None = None,
) -> PlantedGraph:
    """Generate a small-world digraph with planted SCC structure.

    See :class:`SCCStructureSpec` for parameters.  The returned
    :class:`PlantedGraph` carries exact ground-truth SCC labels.
    """
    rng = as_rng(rng)
    sizes, giant_comp, n_chain2 = _component_sizes(spec, rng)
    num_comps = sizes.shape[0]
    n = int(sizes.sum())
    offsets = np.concatenate(([0], np.cumsum(sizes)))[:-1]

    # --- ranks: giant at 0.5, chain2 comps on the OUT side in chain
    # order, everything else uniform avoiding a dead zone at 0.5.
    ranks = rng.random(num_comps) * 0.98 + 0.01
    ranks = np.where(ranks >= 0.5, ranks + 0.02, ranks)  # keep 0.5 free
    if giant_comp >= 0:
        ranks[giant_comp] = 0.5
    chain2_comps = np.arange(num_comps, dtype=np.int64)
    if giant_comp >= 0:
        chain2_comps = chain2_comps[1 : 1 + n_chain2]
    else:
        chain2_comps = chain2_comps[:n_chain2]
    if n_chain2:
        # Strictly increasing ranks per chain so chain edges follow rank.
        ranks[chain2_comps] = 0.55 + 0.4 * (
            np.arange(n_chain2, dtype=np.float64) + rng.random(n_chain2) * 0.5
        ) / max(n_chain2, 1)

    node_comp = np.repeat(np.arange(num_comps, dtype=np.int64), sizes)
    idx_in_comp = np.arange(n, dtype=np.int64) - offsets[node_comp]

    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []

    # --- internal Hamiltonian cycles (components of size >= 2)
    multi = sizes[node_comp] >= 2
    cyc_src = np.flatnonzero(multi).astype(np.int64)
    if cyc_src.size:
        comp = node_comp[cyc_src]
        last = idx_in_comp[cyc_src] == sizes[comp] - 1
        cyc_dst = np.where(last, offsets[comp], cyc_src + 1)
        srcs.append(cyc_src)
        dsts.append(cyc_dst)

    # --- internal chords
    for comps_mask, rate in (
        (node_comp == giant_comp if giant_comp >= 0 else np.zeros(n, bool), spec.giant_chords),
        (
            (node_comp != giant_comp) & (sizes[node_comp] >= 3),
            spec.small_chords,
        ),
    ):
        if rate <= 0:
            continue
        nodes = np.flatnonzero(comps_mask).astype(np.int64)
        if not nodes.size:
            continue
        k = rng.poisson(rate, nodes.shape[0])
        src = np.repeat(nodes, k)
        if src.size:
            comp = node_comp[src]
            dst = segmented_uniform(rng, offsets, sizes, comp)
            srcs.append(src)
            dsts.append(dst)

    # --- attachment edges between components (rank-respecting DAG)
    non_giant = np.flatnonzero(
        np.arange(num_comps) != giant_comp
    ).astype(np.int64)
    if non_giant.size and num_comps >= 2:
        attached = non_giant[
            rng.random(non_giant.shape[0]) >= spec.disconnect_frac
        ]
        k = 1 + rng.poisson(spec.attach_lambda, attached.shape[0])
        a = np.repeat(attached, k)
        use_giant = (
            (rng.random(a.shape[0]) < spec.giant_bias)
            if giant_comp >= 0
            else np.zeros(a.shape[0], bool)
        )
        partner = np.where(
            use_giant,
            giant_comp,
            rng.integers(0, num_comps, a.shape[0]),
        )
        ok = partner != a
        a, partner = a[ok], partner[ok]
        # orient from lower rank to higher rank
        swap = ranks[a] > ranks[partner]
        lo_comp = np.where(swap, partner, a)
        hi_comp = np.where(swap, a, partner)
        srcs.append(segmented_uniform(rng, offsets, sizes, lo_comp))
        dsts.append(segmented_uniform(rng, offsets, sizes, hi_comp))

    # --- chain links between consecutive 2-cycle components
    if n_chain2 >= 2:
        length = max(2, spec.chain2_len)
        c = chain2_comps
        # break the sequence into chains of `length`, linking neighbors
        link_from = c[:-1]
        link_to = c[1:]
        keep = (np.arange(link_from.shape[0]) % length) != (length - 1)
        link_from, link_to = link_from[keep], link_to[keep]
        srcs.append(segmented_uniform(rng, offsets, sizes, link_from))
        dsts.append(segmented_uniform(rng, offsets, sizes, link_to))

    if srcs:
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
    else:
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)

    labels = node_comp.copy()
    if spec.permute and n > 1:
        perm = rng.permutation(n).astype(np.int64)
        src = perm[src]
        dst = perm[dst]
        new_labels = np.empty(n, dtype=np.int64)
        new_labels[perm] = labels
        labels = new_labels

    graph = from_edge_array(src, dst, n, dedup=True, drop_self_loops=True)
    return PlantedGraph(
        graph=graph,
        labels=labels,
        comp_sizes=sizes,
        giant_comp=giant_comp,
        spec=spec,
    )
