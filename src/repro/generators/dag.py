"""Citation-DAG surrogate (the Patents graph).

The paper's Patents graph has **no cycles at all** — "a patent can only
cite other patents that come before it" — so its largest SCC has size 1
and the whole decomposition is found by the Trim step alone (Figure 8
shows ~100 % of Patents handled by Trim).  This generator emits nodes
in temporal order; every edge points strictly backward in time, making
acyclicity a construction invariant, with a preferential-attachment
flavour so the in-degree distribution is skewed like real citations.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph, from_edge_array
from .util import as_rng

__all__ = ["citation_dag"]


def citation_dag(
    n: int,
    avg_citations: float = 5.0,
    *,
    recency_power: float = 2.0,
    rng: np.random.Generator | int | None = None,
) -> CSRGraph:
    """Acyclic citation graph: node ``i`` cites only nodes ``< i``.

    Each node draws ``Poisson(avg_citations)`` citations.  A citation
    from node ``i`` targets ``floor(i * u**recency_power)`` for uniform
    ``u``; ``recency_power > 1`` skews citations toward *older* (small
    id) patents, concentrating in-degree on early nodes.
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = as_rng(rng)
    cites = rng.poisson(avg_citations, n)
    cites[0] = 0  # the first patent has nothing to cite
    src = np.repeat(np.arange(n, dtype=np.int64), cites)
    u = rng.random(src.shape[0])
    dst = np.floor(src * u**recency_power).astype(np.int64)
    # Guarantee strict backward edges even at floating-point edge cases.
    dst = np.minimum(dst, src - 1)
    ok = dst >= 0
    return from_edge_array(
        src[ok], dst[ok], n, dedup=True, drop_self_loops=True
    )
