"""Shared helpers for the synthetic graph generators."""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "sample_power_law_sizes", "segmented_uniform"]


def as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce a seed / Generator / None into a :class:`numpy.random.Generator`."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def sample_power_law_sizes(
    rng: np.random.Generator,
    total: int,
    *,
    alpha: float,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Sample integer sizes in ``[lo, hi]`` with ``P(s) ∝ s^-alpha``
    until they sum to exactly ``total``.

    The last sampled size is clipped to land exactly on ``total``; if
    the clipped remainder falls below ``lo`` it is merged into the
    previous size.  Used to draw the power-law tail of small SCC sizes
    that Figure 2 / Figure 9 exhibit.
    """
    if total <= 0:
        return np.empty(0, dtype=np.int64)
    if lo > hi or lo < 1:
        raise ValueError("need 1 <= lo <= hi")
    if total < lo:
        # Cannot make a single component of legal size; emit one of size
        # `total` anyway (callers pass lo=1 except in edge cases).
        return np.array([total], dtype=np.int64)
    support = np.arange(lo, hi + 1, dtype=np.float64)
    weights = support ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    mean = float((support * weights).sum() / weights.sum())

    sizes_parts: list[np.ndarray] = []
    acc = 0
    while acc < total:
        batch = max(64, int((total - acc) / mean * 1.2))
        draws = lo + np.searchsorted(cdf, rng.random(batch)).astype(np.int64)
        csum = acc + np.cumsum(draws)
        cut = int(np.searchsorted(csum, total, side="left"))
        if cut < batch:
            draws = draws[: cut + 1]
            overshoot = int(csum[cut] - total)
            draws[-1] -= overshoot
            sizes_parts.append(draws)
            acc = total
        else:
            sizes_parts.append(draws)
            acc = int(csum[-1])
    sizes = np.concatenate(sizes_parts)
    if sizes.shape[0] >= 2 and sizes[-1] < lo:
        sizes[-2] += sizes[-1]
        sizes = sizes[:-1]
    assert int(sizes.sum()) == total
    return sizes


def segmented_uniform(
    rng: np.random.Generator,
    seg_offsets: np.ndarray,
    seg_sizes: np.ndarray,
    seg_ids: np.ndarray,
) -> np.ndarray:
    """For each entry of ``seg_ids`` pick a uniform element of that segment.

    ``seg_offsets[k]``/``seg_sizes[k]`` describe segment ``k`` laid out
    contiguously in a global id space.  Returns global ids.  This is the
    workhorse for "pick a random node inside component ``k``" without a
    Python loop.
    """
    sizes = seg_sizes[seg_ids]
    return seg_offsets[seg_ids] + rng.integers(0, np.maximum(sizes, 1))
