"""Surrogate registry for the paper's nine evaluation graphs (Table 1).

The paper evaluates on LiveJournal, Flickr, Baidu, Wikipedia,
Friendster, Twitter, Orkut, US Patents and the California road network
— multi-million-node public dumps we cannot (and need not) load here.
Each entry below is a *scaled-down synthetic surrogate* that preserves
the structural knobs the algorithms respond to:

* giant-SCC fraction (drives Par-FWBW's share of the work),
* fraction of size-1 SCCs (drives Trim's share — e.g. Patents is 100 %
  trimmable because it is a DAG),
* the power-law tail of small/medium SCCs (drives whether Par-WCC and
  Trim2 pay off, i.e. Method 2 vs Method 1),
* diameter regime (small-world vs. CA-road's ~850),
* random orientation for the originally-undirected datasets.

``largest_scc_frac`` / ``diameter`` in :class:`PaperStats` are the
published Table 1 numbers used by EXPERIMENTS.md for the paper-vs-
measured comparison.  Surrogates built from
:func:`~repro.generators.sccstruct.scc_structured_graph` carry exact
ground-truth labels; the Orkut and CA-road surrogates use emergent
structure (random orientation), as their real counterparts do.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..graph import CSRGraph
from ..graph.orient import orient_undirected
from .dag import citation_dag
from .rmat import rmat_edges
from .road import road_grid_graph
from .sccstruct import PlantedGraph, SCCStructureSpec, scc_structured_graph

__all__ = [
    "PaperStats",
    "DatasetSpec",
    "GraphBundle",
    "DATASETS",
    "dataset_names",
    "generate",
    "scale_from_env",
]

#: Environment variable scaling every surrogate's node count.
SCALE_ENV = "REPRO_SCALE"


@dataclass(frozen=True)
class PaperStats:
    """Published Table 1 statistics for the real dataset."""

    nodes: int
    edges: int
    largest_scc: int
    diameter: int

    @property
    def largest_scc_frac(self) -> float:
        return self.largest_scc / self.nodes


@dataclass(frozen=True)
class GraphBundle:
    """A generated surrogate plus optional planted ground truth."""

    name: str
    graph: CSRGraph
    #: exact SCC labels when the generator plants them, else None.
    true_labels: Optional[np.ndarray]
    spec: "DatasetSpec"


@dataclass(frozen=True)
class DatasetSpec:
    """One surrogate dataset: builder + published stats + traits."""

    name: str
    description: str
    paper: PaperStats
    build: Callable[[float, int], "CSRGraph | PlantedGraph"]
    #: default seed, fixed per dataset for reproducible benches.
    seed: int
    small_world: bool = True
    acyclic: bool = False
    oriented: bool = False

    def generate(
        self, scale: float = 1.0, seed: int | None = None
    ) -> GraphBundle:
        if scale <= 0:
            raise ValueError("scale must be positive")
        result = self.build(scale, self.seed if seed is None else seed)
        if isinstance(result, PlantedGraph):
            return GraphBundle(self.name, result.graph, result.labels, self)
        return GraphBundle(self.name, result, None, self)


def _structured(
    scale: float,
    seed: int,
    *,
    n: int,
    giant_frac: float,
    trivial_frac: float,
    alpha: float,
    giant_chords: float,
    small_chords: float = 0.8,
    attach_lambda: float = 1.2,
    giant_bias: float = 0.65,
    chain2_pairs: int = 0,
    max_small: int = 256,
) -> PlantedGraph:
    nn = max(16, int(round(n * scale)))
    # Real-world graphs keep every non-giant SCC far below 1 % of N
    # (Section 2.2) — the separation Method 1's giant threshold relies
    # on.  Cap the surrogate's small-SCC tail accordingly at any scale.
    cap = max(2, int(0.004 * nn))
    spec = SCCStructureSpec(
        n=nn,
        giant_frac=giant_frac,
        trivial_frac=trivial_frac,
        alpha=alpha,
        max_small=min(max_small, cap),
        giant_chords=giant_chords,
        small_chords=small_chords,
        attach_lambda=attach_lambda,
        giant_bias=giant_bias,
        chain2_pairs=int(round(chain2_pairs * scale)),
    )
    return scc_structured_graph(spec, np.random.default_rng(seed))


def _oriented_social(
    scale: float,
    seed: int,
    *,
    n: int,
    und_degree: float,
    rmat_frac: float = 0.25,
) -> CSRGraph:
    """Randomly oriented undirected social topology (Orkut preprocessing).

    A mixture of uniform-random edges with an R-MAT component for mild
    degree skew.  Orkut's friendship graph is dense and far more
    degree-homogeneous than follower graphs, which is why random
    orientation leaves 96 % of it strongly connected (Table 1);
    ``und_degree = 8`` under the independent-coin orientation reproduces
    that fraction.
    """
    rng = np.random.default_rng(seed)
    nn = max(16, int(round(n * scale)))
    m = int(nn * und_degree / 2)
    m_rmat = int(m * rmat_frac)
    rmat_scale = max(2, int(np.ceil(np.log2(nn))))
    rs, rd = rmat_edges(rmat_scale, 0.0 if m_rmat == 0 else m_rmat / (1 << rmat_scale), rng=rng)
    keep = (rs < nn) & (rd < nn)
    src = np.concatenate([rng.integers(0, nn, m - m_rmat), rs[keep]])
    dst = np.concatenate([rng.integers(0, nn, m - m_rmat), rd[keep]])
    return orient_undirected(src, dst, nn, rng=rng)


def _road(scale: float, seed: int, *, width: int, height: int) -> CSRGraph:
    s = float(np.sqrt(scale))
    return road_grid_graph(
        max(4, int(round(width * s))),
        max(4, int(round(height * s))),
        rng=np.random.default_rng(seed),
    )


def _dag(scale: float, seed: int, *, n: int, avg_citations: float) -> CSRGraph:
    return citation_dag(
        max(16, int(round(n * scale))),
        avg_citations,
        rng=np.random.default_rng(seed),
    )


DATASETS: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    DATASETS[spec.name] = spec


# LiveJournal: giant SCC 79 % of nodes, ~20 % of nodes are size-1 SCCs
# (947,776 of 4.85 M), diameter 18 (sparser giant core than Twitter).
_register(
    DatasetSpec(
        name="livej",
        description="LiveJournal link graph surrogate (web/social)",
        paper=PaperStats(4_848_571, 68_993_773, 3_828_682, 18),
        seed=1101,
        build=lambda s, seed: _structured(
            s,
            seed,
            n=40_000,
            giant_frac=0.79,
            trivial_frac=0.93,
            alpha=2.4,
            giant_chords=1.4,
            chain2_pairs=150,
        ),
    )
)

# Flickr: giant 70 %, diameter 7; the Section 3.3 pathology graph —
# a fat tail of small/medium SCCs left for the recursive phase, plus
# chains of 2-cycles that make Trim2 + Par-WCC pay off (Method 2's
# biggest win in Fig. 6/7).
_register(
    DatasetSpec(
        name="flickr",
        description="Flickr user-connection surrogate (social)",
        paper=PaperStats(2_302_925, 33_140_018, 1_605_184, 7),
        seed=1102,
        build=lambda s, seed: _structured(
            s,
            seed,
            n=24_000,
            giant_frac=0.70,
            trivial_frac=0.62,
            alpha=1.9,
            giant_chords=3.0,
            attach_lambda=0.9,
            giant_bias=0.75,
            chain2_pairs=700,
            max_small=400,
        ),
    )
)

# Baidu: small giant (28 %), very small diameter (5), mostly trivia.
_register(
    DatasetSpec(
        name="baidu",
        description="Baidu encyclopedia link surrogate (web)",
        paper=PaperStats(2_141_300, 17_794_839, 609_905, 5),
        seed=1103,
        build=lambda s, seed: _structured(
            s,
            seed,
            n=22_000,
            giant_frac=0.28,
            trivial_frac=0.90,
            alpha=2.2,
            giant_chords=3.5,
            giant_bias=0.7,
            chain2_pairs=120,
        ),
    )
)

# Wikipedia: giant 31 %, diameter 6, huge trivial fraction.
_register(
    DatasetSpec(
        name="wiki",
        description="English Wikipedia link surrogate (web)",
        paper=PaperStats(15_172_740, 131_166_252, 4_736_008, 6),
        seed=1104,
        build=lambda s, seed: _structured(
            s,
            seed,
            n=48_000,
            giant_frac=0.31,
            trivial_frac=0.94,
            alpha=2.3,
            giant_chords=3.2,
            chain2_pairs=100,
        ),
    )
)

# Friendster: originally undirected (randomly oriented), giant 38 %,
# diameter 25 — the sparsest giant core of the social graphs.
_register(
    DatasetSpec(
        name="friend",
        description="Friendster user-connection surrogate (social, oriented)",
        paper=PaperStats(124_836_180, 1_806_067_135, 46_941_703, 25),
        seed=1105,
        oriented=True,
        build=lambda s, seed: _structured(
            s,
            seed,
            n=60_000,
            giant_frac=0.38,
            trivial_frac=0.80,
            alpha=2.1,
            giant_chords=1.1,
            attach_lambda=1.0,
            chain2_pairs=250,
        ),
    )
)

# Twitter: giant 80 %, diameter 6 — dense small-world core, the
# paper's best speedup (29.41x).
_register(
    DatasetSpec(
        name="twitter",
        description="Twitter follower surrogate (social)",
        paper=PaperStats(41_652_230, 1_468_365_182, 33_479_734, 6),
        seed=1106,
        build=lambda s, seed: _structured(
            s,
            seed,
            n=52_000,
            giant_frac=0.80,
            trivial_frac=0.95,
            alpha=2.5,
            giant_chords=3.6,
            giant_bias=0.8,
            chain2_pairs=80,
        ),
    )
)

# Orkut: originally undirected; random orientation of a dense,
# degree-homogeneous social topology leaves almost everything (96 %)
# in one SCC.  The SCC structure is emergent from the orientation,
# exactly as in the paper's preprocessing.
_register(
    DatasetSpec(
        name="orkut",
        description="Orkut user-connection surrogate (social, oriented)",
        paper=PaperStats(3_072_627, 11_718_583, 2_963_298, 8),
        seed=1107,
        oriented=True,
        build=lambda s, seed: _oriented_social(
            s, seed, n=30_000, und_degree=8.0
        ),
    )
)

# Patents: a citation DAG — largest SCC is a single node and the whole
# graph is resolved by Trim alone (Fig. 8).
_register(
    DatasetSpec(
        name="patents",
        description="US patent citation surrogate (acyclic)",
        paper=PaperStats(3_774_768, 16_518_948, 1, 22),
        seed=1108,
        acyclic=True,
        build=lambda s, seed: _dag(s, seed, n=36_000, avg_citations=4.4),
    )
)

# CA-road: the non-small-world counterexample — randomly oriented
# perforated grid; huge diameter, many medium SCCs, both methods lose
# to Tarjan here (Section 5).
_register(
    DatasetSpec(
        name="ca-road",
        description="California road-network surrogate (oriented grid)",
        paper=PaperStats(1_965_206, 5_533_214, 1_168_580, 850),
        seed=1109,
        small_world=False,
        oriented=True,
        build=lambda s, seed: _road(s, seed, width=300, height=65),
    )
)


def dataset_names() -> list[str]:
    """All registered surrogate names, in the paper's Table 1 order."""
    return list(DATASETS.keys())


def generate(
    name: str, scale: float | None = None, seed: int | None = None
) -> GraphBundle:
    """Generate the surrogate for ``name`` at ``scale`` (default from env).

    ``scale`` multiplies the base node count; ``REPRO_SCALE`` provides
    the default (1.0 when unset).
    """
    if name not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; known: {', '.join(DATASETS)}"
        )
    if scale is None:
        scale = scale_from_env()
    return DATASETS[name].generate(scale, seed)


def scale_from_env(default: float = 1.0) -> float:
    """Read the global surrogate scale factor from ``$REPRO_SCALE``."""
    raw = os.environ.get(SCALE_ENV)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"invalid {SCALE_ENV}={raw!r}") from exc
    if value <= 0:
        raise ValueError(f"{SCALE_ENV} must be positive, got {value}")
    return value
