"""Filesystem primitives shared by graph I/O and run checkpoints.

Two needs recur across the resilient-ingestion layer:

* **Atomic publication** — a dataset or checkpoint file must never be
  observable half-written.  Both helpers here write to a temporary file
  in the *same directory* (so the final ``os.replace`` is a same-
  filesystem rename, which POSIX guarantees atomic) and clean the
  temporary up on any failure, so a crash mid-write leaves either the
  old complete file or nothing — never a truncated one.
* **Integrity tags** — checkpoints carry a CRC32 over their payload so
  a torn or bit-rotted file is detected at load time instead of
  resuming from garbage.
"""

from __future__ import annotations

import os
import tempfile
import zlib
from contextlib import contextmanager
from typing import IO, Iterator, Union

PathLike = Union[str, os.PathLike]

__all__ = ["atomic_write", "atomic_path", "crc32_chunks"]


def _mktemp_beside(path: str, suffix: str) -> str:
    """A fresh temp filename in ``path``'s directory (same filesystem)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory,
        prefix=os.path.basename(path) + ".tmp.",
        suffix=suffix,
    )
    os.close(fd)
    return tmp


@contextmanager
def atomic_write(
    path: PathLike, mode: str = "w", **open_kwargs
) -> Iterator[IO]:
    """Open a temp file for writing; rename over ``path`` on success.

    On any exception the temp file is removed and ``path`` is left
    exactly as it was.  The file is flushed and fsynced before the
    rename so the publication is durable, not just atomic.
    """
    path = os.fspath(path)
    tmp = _mktemp_beside(path, suffix="")
    try:
        with open(tmp, mode, **open_kwargs) as f:
            yield f
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@contextmanager
def atomic_path(path: PathLike, *, suffix: str = "") -> Iterator[str]:
    """Yield a temp *path* for writers that open files themselves
    (``np.savez``, ``scipy.io.mmwrite``); rename over ``path`` on
    success, delete on failure.

    ``suffix`` matters for writers that append an extension when the
    target has none (``np.savez`` adds ``.npz``): passing the real
    extension keeps the temp name stable so the rename finds it.
    """
    path = os.fspath(path)
    tmp = _mktemp_beside(path, suffix=suffix)
    try:
        yield tmp
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def crc32_chunks(*chunks: bytes) -> int:
    """CRC32 accumulated over ``chunks`` in order (unsigned)."""
    crc = 0
    for chunk in chunks:
        crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF
