"""Filesystem primitives shared by graph I/O and run checkpoints.

Two needs recur across the resilient-ingestion layer:

* **Atomic publication** — a dataset or checkpoint file must never be
  observable half-written.  Both helpers here write to a temporary file
  in the *same directory* (so the final ``os.replace`` is a same-
  filesystem rename, which POSIX guarantees atomic) and clean the
  temporary up on any failure, so a crash mid-write leaves either the
  old complete file or nothing — never a truncated one.
* **Integrity tags** — checkpoints carry a CRC32 over their payload so
  a torn or bit-rotted file is detected at load time instead of
  resuming from garbage.
* **Atomic appends** — the request journal needs records that land
  whole or not at all.  ``O_APPEND`` plus a *single* ``os.write`` per
  record is the POSIX recipe: concurrent appenders never interleave
  within a record, and a crash mid-write leaves at most one torn tail
  line, which readers skip.
"""

from __future__ import annotations

import os
import tempfile
import zlib
from contextlib import contextmanager
from typing import IO, Iterator, Optional, Union

PathLike = Union[str, os.PathLike]

__all__ = [
    "atomic_write",
    "atomic_path",
    "crc32_chunks",
    "open_append",
    "append_line",
    "process_rss_bytes",
]

_PAGE_SIZE = (
    os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096
)


def _mktemp_beside(path: str, suffix: str) -> str:
    """A fresh temp filename in ``path``'s directory (same filesystem)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory,
        prefix=os.path.basename(path) + ".tmp.",
        suffix=suffix,
    )
    os.close(fd)
    return tmp


@contextmanager
def atomic_write(
    path: PathLike, mode: str = "w", **open_kwargs
) -> Iterator[IO]:
    """Open a temp file for writing; rename over ``path`` on success.

    On any exception the temp file is removed and ``path`` is left
    exactly as it was.  The file is flushed and fsynced before the
    rename so the publication is durable, not just atomic.
    """
    path = os.fspath(path)
    tmp = _mktemp_beside(path, suffix="")
    try:
        with open(tmp, mode, **open_kwargs) as f:
            yield f
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@contextmanager
def atomic_path(path: PathLike, *, suffix: str = "") -> Iterator[str]:
    """Yield a temp *path* for writers that open files themselves
    (``np.savez``, ``scipy.io.mmwrite``); rename over ``path`` on
    success, delete on failure.

    ``suffix`` matters for writers that append an extension when the
    target has none (``np.savez`` adds ``.npz``): passing the real
    extension keeps the temp name stable so the rename finds it.
    """
    path = os.fspath(path)
    tmp = _mktemp_beside(path, suffix=suffix)
    try:
        yield tmp
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def crc32_chunks(*chunks: bytes) -> int:
    """CRC32 accumulated over ``chunks`` in order (unsigned)."""
    crc = 0
    for chunk in chunks:
        crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


def open_append(path: PathLike) -> int:
    """Open ``path`` for crash-safe record appends; returns an fd.

    ``O_APPEND`` makes every subsequent single-``write`` atomic with
    respect to other appenders (POSIX), which is what
    :func:`append_line` relies on.  The caller owns the fd.
    """
    return os.open(
        os.fspath(path),
        os.O_WRONLY | os.O_CREAT | os.O_APPEND,
        0o644,
    )


def append_line(fd: int, text: str, *, fsync: bool = True) -> None:
    """Append ``text`` (newline-terminated) as one atomic write.

    The record is encoded and written with a *single* ``os.write`` so
    it can never interleave with another appender's record; with
    ``fsync`` (the default) it is also durable before the call
    returns — the property the request journal's replay guarantee
    rests on.
    """
    if not text.endswith("\n"):
        text += "\n"
    data = text.encode("utf-8")
    written = os.write(fd, data)
    if written != len(data):  # pragma: no cover - partial O_APPEND
        raise OSError(
            f"short journal append ({written}/{len(data)} bytes)"
        )
    if fsync:
        os.fsync(fd)


def process_rss_bytes(
    pid: Optional[int] = None, *, statm_path: Optional[str] = None
) -> Optional[int]:
    """Resident-set size of a process from ``/proc/<pid>/statm``.

    ``pid=None`` reads ``/proc/self/statm``; ``statm_path`` overrides
    the file entirely (tests fake both the present and absent paths).
    Returns None when the file is unreadable or malformed — callers
    pick their own fallback (:func:`repro.service.governor.rss_bytes`
    adds a ``getrusage`` tier for the calling process).
    """
    if statm_path is None:
        who = "self" if pid is None else int(pid)
        statm_path = f"/proc/{who}/statm"
    try:
        with open(statm_path, "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        return None
