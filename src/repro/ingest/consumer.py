"""The stream consumer: edge feed in, maintained SCC labels out.

:class:`StreamConsumer` is the loop that ties the tier together.  It
pulls byte chunks from a :class:`~repro.ingest.sources.StreamSource`,
parses them through a :class:`~repro.ingest.parser.RecordParser`,
batches the resulting edits by **count and age**, and hands each batch
to an *applier* — in-process :class:`EngineApplier` driving
:meth:`repro.engine.Engine.update`, or a network applier posting
``update`` requests at a serve daemon.  After every applied batch it
commits a CRC-guarded :class:`~repro.ingest.checkpoint.Watermark`, so
a SIGKILL'd consumer resumes without re-applying committed edits.

Failure behaviours, in one place:

* **Resume** — on start the committed watermark (if any) seeks a
  seekable source past the applied prefix; replaying sources restart
  from zero and every record at or below the watermark is skipped and
  counted (``records_skipped_committed``).  Combined with idempotent
  edge edits, delivery is at-least-once with exactly-once effect.
* **Backpressure** — the consumer is synchronous by design: while a
  batch is being applied (or retried) it does not read the source, so
  a shedding admission controller or a refusing RSS governor
  translates directly into the feed being paused (TCP windows fill,
  file tails wait).  Shed responses are retried under the same
  deterministic backoff the serving tier uses, up to a bounded
  budget.
* **Degradation** — when the applier reports compaction debt
  (``log_ratio``) above ``degrade_log_ratio``, the consumer pays one
  synchronous snapshot fold (:meth:`Engine.compact`) and resumes
  incremental maintenance against a clean base.
* **Batch splitting** — :meth:`Engine.update` applies inserts before
  deletes within one call, so a batch may hold at most one pending op
  per edge; a record that contradicts a pending op flushes the batch
  early (``conflict_flushes``), preserving stream order per edge.

Freshness is tracked per batch: the lag from a batch's first record
arriving to its apply completing, reported as mean/p95/max — the
end-to-end staleness bound a dashboard reading live SCC analytics
actually cares about.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError, ServiceOverloadError
from ..service.retry import RetryPolicy
from .checkpoint import StreamCheckpoint, Watermark
from .parser import EdgeRecord, RecordParser
from .sources import StreamSource

__all__ = ["StreamConsumer", "EngineApplier"]

#: response error types the consumer treats as *pause and retry*
#: rather than fatal: the service is alive but shedding load.
_BACKPRESSURE_ERRORS = ("ServiceOverloadError", "MemoryBudgetError")


class EngineApplier:
    """In-process applier: batches land directly on an
    :class:`~repro.engine.Engine` mutable session.

    Returns the same response-dict shape the serve daemon's ``update``
    op produces, so :class:`StreamConsumer` cannot tell local from
    remote — including turning overload/memory refusals into
    ``ok=False`` shed responses instead of exceptions.
    """

    def __init__(
        self,
        engine,
        target,
        *,
        compact_ratio: Optional[float] = None,
        damage_threshold: Optional[float] = None,
    ) -> None:
        self.engine = engine
        self.target = target
        self.compact_ratio = compact_ratio
        self.damage_threshold = damage_threshold

    def _response(self, report) -> dict:
        return {
            "ok": True,
            "applied": report.applied,
            "changed": report.changed,
            "compacted": report.compacted,
            "graph_version": report.version,
            "num_sccs": report.num_components,
            "labels_crc32": report.labels_crc32,
            "log_ratio": report.log_ratio,
        }

    def _refused(self, exc: Exception) -> dict:
        return {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
        }

    def apply_batch(
        self,
        inserts: List[Tuple[int, int]],
        deletes: List[Tuple[int, int]],
    ) -> dict:
        try:
            report = self.engine.update(
                self.target,
                inserts=inserts,
                deletes=deletes,
                compact_ratio=self.compact_ratio,
                damage_threshold=self.damage_threshold,
            )
        except ReproError as exc:
            return self._refused(exc)
        return self._response(report)

    def compact(self) -> dict:
        try:
            report = self.engine.compact(self.target)
        except ReproError as exc:
            return self._refused(exc)
        return self._response(report)


class StreamConsumer:
    """Pull → parse → batch → apply → checkpoint, resiliently."""

    def __init__(
        self,
        source: StreamSource,
        applier,
        *,
        parser: Optional[RecordParser] = None,
        on_error: str = "skip",
        num_nodes: Optional[int] = None,
        dedup_window: int = 1024,
        checkpoint: Optional[StreamCheckpoint] = None,
        batch_edges: int = 512,
        batch_age: float = 0.5,
        idle_wait: float = 0.05,
        degrade_log_ratio: Optional[float] = None,
        shed_retries: int = 8,
        retry: Optional[RetryPolicy] = None,
        max_batches: Optional[int] = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        if batch_edges < 1:
            raise ValueError("batch_edges must be >= 1")
        self.source = source
        self.applier = applier
        self.checkpoint = checkpoint
        self.batch_edges = int(batch_edges)
        self.batch_age = float(batch_age)
        self.idle_wait = float(idle_wait)
        self.degrade_log_ratio = degrade_log_ratio
        self.shed_retries = int(shed_retries)
        self.retry = retry or RetryPolicy(
            max_attempts=max(2, shed_retries), backoff_base=0.05
        )
        self.max_batches = max_batches
        self._clock = clock
        self._sleep = sleep

        # -- resume: the committed watermark decides where we start.
        wm = checkpoint.load() if checkpoint is not None else None
        self.committed_offset = wm.offset if wm is not None else 0
        self.graph_version = wm.graph_version if wm is not None else None
        self.labels_crc32 = wm.labels_crc32 if wm is not None else None
        self.batches = wm.batches if wm is not None else 0
        self.records_applied = wm.records if wm is not None else 0
        self.resumed = wm is not None
        start = 0
        if wm is not None and not source.replays_from_start:
            # seekable feeds skip the applied prefix at the transport;
            # replaying feeds restart at zero and the record-level
            # watermark skip below drops the committed prefix.
            source.seek(wm.offset)
            start = wm.offset
        if parser is None:
            parser = RecordParser(
                on_error=on_error,
                num_nodes=num_nodes,
                dedup_window=dedup_window,
                start_offset=start,
                path=source.describe(),
            )
        self.parser = parser

        # -- pending batch state
        self._pending: "Dict[Tuple[int, int], str]" = {}
        self._batch_end_offset = self.committed_offset
        self._batch_born: Optional[float] = None
        self._ended = False
        self._stopped = False

        # -- counters
        self.records_skipped_committed = 0
        self.conflict_flushes = 0
        self.sheds = 0
        self.degrades = 0
        self.log_ratio = 0.0
        self._lag_samples: List[float] = []

    # -- lifecycle ------------------------------------------------------
    @property
    def ended(self) -> bool:
        """True once the feed signalled a clean end (or EOF)."""
        return self._ended

    def stop(self) -> None:
        """Ask the run loop to exit after the current step."""
        self._stopped = True

    # -- main loop ------------------------------------------------------
    def run(self) -> dict:
        """Consume until end-of-feed, ``stop()``, or ``max_batches``.

        Returns :meth:`stats`.  Raises
        :class:`~repro.errors.StreamFeedError` if the source dies past
        its reconnect budget, :class:`~repro.errors.
        ServiceOverloadError` if the applier sheds past the retry
        budget — both typed, both resumable from the committed
        watermark.
        """
        while not self._stopped and not self._ended:
            if (
                self.max_batches is not None
                and self.batches >= self.max_batches
            ):
                break
            self.step()
        if self._ended:
            self._ingest(self.parser.flush())
        self._flush("end")
        return self.stats()

    def step(self) -> None:
        """One bounded read + parse + conditional flush."""
        result = self.source.read()
        if result is None:
            self._ended = True
            return
        offset, data = result
        if data:
            self._ingest(self.parser.feed_at(offset, data))
            self._maybe_flush()
        else:
            # idle: age out a lingering batch, then wait politely.
            self._maybe_flush()
            if not self._ended:
                self._sleep(self.idle_wait)

    # -- batching -------------------------------------------------------
    def _ingest(self, records: List[EdgeRecord]) -> None:
        for rec in records:
            if rec.end_offset <= self.committed_offset:
                # the committed prefix of a replaying feed: already
                # applied before the crash/reconnect, never re-applied.
                self.records_skipped_committed += 1
                continue
            if rec.kind == "end":
                self._batch_end_offset = rec.end_offset
                self._ended = True
                continue
            edge = rec.edge
            have = self._pending.get(edge)
            if have is not None and have != rec.kind:
                # add/remove of the same edge cannot share a batch
                # (inserts apply before deletes within one update):
                # flush what we have, then start a batch with this op.
                self.conflict_flushes += 1
                self._flush("conflict")
            if not self._pending:
                self._batch_born = self._clock()
            self._pending[edge] = rec.kind
            self._batch_end_offset = rec.end_offset
            if len(self._pending) >= self.batch_edges:
                self._flush("size")

    def _maybe_flush(self) -> None:
        if (
            self._pending
            and self._batch_born is not None
            and self._clock() - self._batch_born >= self.batch_age
        ):
            self._flush("age")

    def _flush(self, reason: str) -> None:
        watermark_offset = self._batch_end_offset
        if not self._pending:
            if reason == "end" and watermark_offset > self.committed_offset:
                # an end record (or trailing skipped lines) moved the
                # offset without pending edits: commit the position so
                # a restart does not re-read the tail.
                self._commit(watermark_offset, records=0)
            return
        inserts = [e for e, k in self._pending.items() if k == "add"]
        deletes = [e for e, k in self._pending.items() if k == "remove"]
        n = len(self._pending)
        born = self._batch_born
        self._pending.clear()
        self._batch_born = None
        resp = self._apply_with_backpressure(inserts, deletes)
        self.graph_version = resp.get("graph_version", self.graph_version)
        self.labels_crc32 = resp.get("labels_crc32", self.labels_crc32)
        self.log_ratio = float(resp.get("log_ratio") or 0.0)
        self.batches += 1
        self.records_applied += n
        if born is not None:
            self._note_lag(self._clock() - born)
        self._commit(watermark_offset, records=n)
        if (
            self.degrade_log_ratio is not None
            and self.log_ratio > self.degrade_log_ratio
        ):
            # compaction debt over budget: degrade to one synchronous
            # snapshot fold so traversal overhead stops growing.
            resp = self.applier.compact()
            if resp.get("ok", True):
                self.degrades += 1
                self.log_ratio = float(resp.get("log_ratio") or 0.0)

    def _apply_with_backpressure(
        self,
        inserts: List[Tuple[int, int]],
        deletes: List[Tuple[int, int]],
    ) -> dict:
        attempt = 0
        while True:
            resp = self.applier.apply_batch(inserts, deletes)
            if resp.get("ok", True):
                return resp
            etype = resp.get("error_type", "")
            if etype in _BACKPRESSURE_ERRORS:
                # the tier is shedding: pausing *here* pauses the feed
                # (we stop reading the source), which is the whole
                # backpressure story.  Retry under bounded backoff.
                self.sheds += 1
                if attempt < self.shed_retries:
                    self._sleep(
                        self.retry.delay(attempt, key="stream-apply")
                    )
                    attempt += 1
                    continue
                raise ServiceOverloadError(
                    f"stream batch shed {attempt + 1} times: "
                    f"{resp.get('error')}",
                    reason="stream-backpressure",
                )
            raise ReproError(
                f"stream batch rejected ({etype}): {resp.get('error')}"
            )

    def _commit(self, offset: int, *, records: int) -> None:
        self.committed_offset = max(self.committed_offset, offset)
        if self.checkpoint is not None:
            self.checkpoint.save(
                Watermark(
                    offset=self.committed_offset,
                    graph_version=int(self.graph_version or 0),
                    labels_crc32=self.labels_crc32,
                    batches=self.batches,
                    records=self.records_applied,
                )
            )

    # -- freshness ------------------------------------------------------
    def _note_lag(self, lag: float) -> None:
        self._lag_samples.append(lag)
        if len(self._lag_samples) > 4096:
            del self._lag_samples[: len(self._lag_samples) // 2]

    def _lag_stats(self) -> dict:
        if not self._lag_samples:
            return {"mean": 0.0, "p95": 0.0, "max": 0.0}
        xs = sorted(self._lag_samples)
        return {
            "mean": sum(xs) / len(xs),
            "p95": xs[min(len(xs) - 1, int(0.95 * len(xs)))],
            "max": xs[-1],
        }

    # -- reporting ------------------------------------------------------
    def stats(self) -> dict:
        report = self.parser.report
        return {
            "ended": self._ended,
            "resumed": self.resumed,
            "batches": self.batches,
            "records_applied": self.records_applied,
            "records_skipped_committed": self.records_skipped_committed,
            "conflict_flushes": self.conflict_flushes,
            "sheds": self.sheds,
            "degrades": self.degrades,
            "log_ratio": self.log_ratio,
            "committed_offset": self.committed_offset,
            "graph_version": self.graph_version,
            "labels_crc32": self.labels_crc32,
            "freshness_lag": self._lag_stats(),
            "parser": {
                "lines": report.lines,
                "edges": report.edges,
                "dropped": report.dropped,
                "repaired": report.repaired,
                "duplicates": report.duplicates,
                "overlap_bytes": self.parser.framer.overlap_bytes,
                "gap_bytes": self.parser.framer.gap_bytes,
            },
            "source": self.source.stats(),
        }
