"""Live edge-stream ingestion: sources, framing, parsing, checkpoints,
and the consumer loop that feeds incremental SCC maintenance.

The package is the streaming twin of :mod:`repro.graph.io`: the same
policy regime (``strict``/``repair``/``skip`` through
:class:`~repro.graph.io.IngestReport`), the same byte-exact framing
(shared :class:`~repro.ingest.framing.LineFramer`), applied to feeds
that disconnect, stall, replay, and get killed mid-batch.

Exports resolve lazily: :mod:`repro.graph.io` imports the framing leaf
from here, so importing the parser (which imports :mod:`repro.graph.
io` back) at package-import time would cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "Frame": "framing",
    "LineFramer": "framing",
    "EdgeRecord": "parser",
    "RecordParser": "parser",
    "Watermark": "checkpoint",
    "StreamCheckpoint": "checkpoint",
    "StreamSource": "sources",
    "FileTailSource": "sources",
    "SocketSource": "sources",
    "PipeSource": "sources",
    "open_source": "sources",
    "StreamConsumer": "consumer",
    "EngineApplier": "consumer",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(
        importlib.import_module(f".{module}", __name__), name
    )
