"""Resilient stream sources: where live edge feeds enter the system.

A :class:`StreamSource` delivers the raw bytes of an edge feed as
``(offset, chunk)`` pairs — the offset is the chunk's absolute
position in the stream, which is what lets the parser trim at-least-
once replays byte-exactly and the checkpoint watermark name a resume
point.  Three transports cover the realistic feed shapes:

* :class:`FileTailSource` — follow a growing file (``tail -f``
  semantics); reconnects reopen and seek, so delivery is seamless.
* :class:`SocketSource` — a Unix or TCP socket peer.  Real feeds
  disconnect and stall; the source redials with **bounded reconnects
  under exponential backoff with deterministic jitter** (the same
  :class:`~repro.service.retry.RetryPolicy` arithmetic the serving
  tier retries with), enforces a **per-read deadline** via socket
  timeouts, and a **stalled-feed watchdog** forces a redial when the
  peer goes quiet past ``stall_timeout``.  A reconnected peer is
  assumed to replay its stream from the start (at-least-once); the
  downstream overlap trim turns that into exactly-once parsing.
* :class:`PipeSource` — a finite NDJSON pipe (stdin); EOF ends the
  stream.

Deterministic chaos rides the same path as real failures: a
:class:`~repro.runtime.faults.FaultPlan` with ``site="stream"`` specs
(``disconnect@3``, ``stall@5``, ``garbage@7``, ``dup@9`` — the index
is the source's monotone read counter) makes the source degrade
*itself* at exact, reproducible points, so the chaos drills exercise
the identical reconnect/watchdog/policy machinery that absorbs real
network weather.
"""

from __future__ import annotations

import os
import socket
import time
from typing import IO, Optional, Tuple, Union

import numpy as np

from ..errors import StreamFeedError
from ..service.retry import RetryPolicy
from ..runtime.faults import FaultPlan, FaultSpec

__all__ = [
    "StreamSource",
    "FileTailSource",
    "SocketSource",
    "PipeSource",
    "open_source",
]

#: default bytes per read (small enough to interleave with faults in
#: tests, large enough to amortize syscalls on real feeds).
DEFAULT_CHUNK_BYTES = 1 << 14

#: fault-plan injection site stream sources match against.
FAULT_SITE = "stream"


class StreamSource:
    """Base class: offset-tracked reads, reconnects, watchdog, chaos.

    Subclasses implement ``_open_raw`` / ``_read_raw`` / ``_close_raw``
    and set :attr:`replays_from_start`; everything failure-shaped —
    the bounded redial loop, the backoff arithmetic, the stall
    watchdog, and the deterministic fault hooks — lives here so every
    transport degrades identically.
    """

    #: True when a reconnected peer re-serves the stream from offset 0
    #: (sockets); False when reconnects resume at the current offset
    #: (files).  Consumers use this to know replay trimming applies.
    replays_from_start = False

    def __init__(
        self,
        *,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        max_reconnects: int = 8,
        retry: Optional[RetryPolicy] = None,
        read_timeout: float = 1.0,
        stall_timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        self.chunk_bytes = int(chunk_bytes)
        self.max_reconnects = int(max_reconnects)
        # reuse the serving tier's deterministic backoff: same base /
        # factor / crc32-jitter arithmetic, keyed by the source name.
        self.retry = retry or RetryPolicy(
            max_attempts=max(1, max_reconnects),
            backoff_base=0.05,
            backoff_max=2.0,
        )
        self.read_timeout = read_timeout
        self.stall_timeout = stall_timeout
        self.fault_plan = fault_plan
        self._clock = clock
        self._sleep = sleep
        self._pos = 0
        self._last_chunk: Optional[Tuple[int, bytes]] = None
        self._last_byte_at: Optional[float] = None
        self._closed = False
        # stats
        self.reads = 0
        self.reconnects = 0
        self.stalls = 0
        self.faults = {k: 0 for k in ("disconnect", "stall", "garbage", "dup")}

    # -- transport hooks (subclass responsibility) ----------------------
    def _open_raw(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def _read_raw(self) -> Tuple[int, bytes]:  # pragma: no cover
        raise NotImplementedError

    def _close_raw(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def _is_open(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - interface
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------
    @property
    def offset(self) -> int:
        """Absolute stream offset of the next byte to deliver."""
        return self._pos

    def seek(self, offset: int) -> None:
        """Best-effort resume position (before the first read).

        Seekable transports (files) jump there; replaying transports
        ignore it — the parser's overlap trim and the consumer's
        watermark skip make replay-from-zero equivalent.
        """
        self._pos = int(offset)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._close_raw()

    def __enter__(self) -> "StreamSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        return {
            "source": self.describe(),
            "offset": self._pos,
            "reads": self.reads,
            "reconnects": self.reconnects,
            "stalls": self.stalls,
            "faults": dict(self.faults),
        }

    # -- the read loop --------------------------------------------------
    def read(self) -> Optional[Tuple[int, bytes]]:
        """One bounded read: ``(offset, chunk)``.

        ``(offset, b"")`` means *nothing right now* (an idle tail, a
        timed-out socket read) — the caller decides how long to wait.
        ``None`` means the stream has definitively ended (finite
        transports only).  Raises :class:`~repro.errors.
        StreamFeedError` once the reconnect budget is exhausted.
        """
        if self._closed:
            return None
        index = self.reads
        self.reads += 1
        spec = (
            self.fault_plan.network(FAULT_SITE, index)
            if self.fault_plan is not None
            else None
        )
        if spec is not None and spec.kind == "dup":
            # re-deliver the previous chunk at its old offset: the
            # downstream overlap trim must absorb it byte-exactly.
            self.faults["dup"] += 1
            if self._last_chunk is not None:
                return self._last_chunk
        if spec is not None and spec.kind == "stall":
            # the peer goes quiet; the watchdog below must notice.
            self.faults["stall"] += 1
            self._sleep(spec.hang_seconds)
        if spec is not None and spec.kind == "disconnect":
            # simulated peer drop: sever the transport; the normal
            # read path below pays the redial.
            self.faults["disconnect"] += 1
            self._close_raw()
        self._ensure_open()
        result = self._read_raw()
        if result is None:
            return None
        pos, data = result
        now = self._clock()
        if data:
            self._last_byte_at = now
            self._last_chunk = (pos, data)
        elif (
            self.stall_timeout is not None
            and self._last_byte_at is not None
            and now - self._last_byte_at > self.stall_timeout
        ):
            # stalled-feed watchdog: the peer is up but silent past
            # the budget — treat it as dead and redial.
            self.stalls += 1
            self._last_byte_at = now
            self._close_raw()
            self._ensure_open()
        if spec is not None and spec.kind == "garbage" and data:
            self.faults["garbage"] += 1
            data = _garble(data, spec)
            self._last_chunk = (pos, data)
        return pos, data

    def _ensure_open(self) -> None:
        """Open (or re-open) the transport under the bounded redial
        loop: exponential backoff with deterministic jitter, a hard
        reconnect budget, and a typed failure past it."""
        attempt = 0
        while not self._is_open():
            if attempt > 0:
                if self.reconnects >= self.max_reconnects:
                    raise StreamFeedError(
                        "reconnect budget exhausted",
                        source=self.describe(),
                        reconnects=self.reconnects,
                    )
                self.reconnects += 1
                self._sleep(
                    self.retry.delay(attempt, key=self.describe())
                )
            try:
                self._open_raw()
                return
            except OSError:
                attempt += 1
                if attempt >= max(2, self.max_reconnects + 1):
                    raise StreamFeedError(
                        "could not (re)connect",
                        source=self.describe(),
                        reconnects=self.reconnects,
                    )


def _garble(data: bytes, spec: FaultSpec) -> bytes:
    """Deterministically smash ``spec.bit_flips`` bytes of ``data``.

    Same length in, same length out — stream offsets stay truthful,
    which is what keeps the watermark/replay machinery honest while
    the affected records parse as policed garbage.
    """
    out = bytearray(data)
    rng = np.random.default_rng(spec.flip_seed)
    for pos in rng.integers(0, len(out), size=spec.bit_flips):
        out[int(pos)] = 0xFE
    return bytes(out)


class FileTailSource(StreamSource):
    """Follow a growing edge-feed file (``tail -f`` semantics).

    Reads resume at the recorded offset across reconnects *and*
    consumer restarts (the checkpoint seeks before the first read).
    ``follow=False`` ends the stream at EOF instead of idling — the
    batch-replay shape used by tests and benchmarks.
    """

    replays_from_start = False

    def __init__(self, path, *, follow: bool = True, **kwargs) -> None:
        super().__init__(**kwargs)
        self.path = os.fspath(path)
        self.follow = follow
        self._fh: Optional[IO[bytes]] = None

    def describe(self) -> str:
        return f"tail:{self.path}"

    def _is_open(self) -> bool:
        return self._fh is not None

    def _open_raw(self) -> None:
        fh = open(self.path, "rb")
        fh.seek(self._pos)
        self._fh = fh

    def _close_raw(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._fh = None

    def _read_raw(self) -> Optional[Tuple[int, bytes]]:
        try:
            data = self._fh.read(self.chunk_bytes)
        except (OSError, ValueError):
            self._close_raw()
            return self._pos, b""
        pos = self._pos
        if data:
            self._pos += len(data)
            return pos, data
        if not self.follow:
            return None
        return pos, b""


class SocketSource(StreamSource):
    """A Unix- or TCP-socket edge feed with full failure absorption.

    ``address`` is a Unix socket path (str) or a ``(host, port)``
    tuple.  Every ``recv`` runs under ``read_timeout`` (the per-read
    deadline); a peer that closes or resets is redialed under the
    bounded backoff budget; a peer that stays connected but silent
    past ``stall_timeout`` is declared stalled and redialed too.  A
    fresh connection is assumed to replay the feed from its start —
    the at-least-once contract — so the stream offset resets to 0 and
    the parser's overlap trim suppresses everything already seen.
    """

    replays_from_start = True

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        *,
        stall_timeout: Optional[float] = 10.0,
        **kwargs,
    ) -> None:
        super().__init__(stall_timeout=stall_timeout, **kwargs)
        self.address = address
        self._sock: Optional[socket.socket] = None

    def describe(self) -> str:
        if isinstance(self.address, str):
            return f"socket:{self.address}"
        host, port = self.address
        return f"tcp:{host}:{port}"

    def _is_open(self) -> bool:
        return self._sock is not None

    def _open_raw(self) -> None:
        if isinstance(self.address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.settimeout(self.read_timeout)
            sock.connect(self.address)
        except OSError:
            sock.close()
            raise
        self._sock = sock
        # a fresh peer replays from the top: reset the stream offset
        # so delivered chunks carry truthful replay positions.
        self._pos = 0
        self._last_byte_at = self._clock()

    def _close_raw(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._sock = None

    def _read_raw(self) -> Optional[Tuple[int, bytes]]:
        try:
            data = self._sock.recv(self.chunk_bytes)
        except socket.timeout:
            # per-read deadline expired with no bytes: idle, let the
            # watchdog arithmetic decide whether that is a stall.
            return self._pos, b""
        except OSError:
            self._close_raw()
            return self._pos, b""
        if data == b"":
            # orderly peer close mid-feed: at-least-once peers come
            # back and replay, so treat it as a disconnect to redial.
            self._close_raw()
            return self._pos, b""
        pos = self._pos
        self._pos += len(data)
        return pos, data

    def seek(self, offset: int) -> None:
        # sockets cannot seek: the peer replays from the start and the
        # consumer's watermark skip drops the committed prefix.
        pass


class PipeSource(StreamSource):
    """A finite byte pipe (stdin / a FIFO): EOF ends the stream."""

    replays_from_start = False

    def __init__(self, stream: IO[bytes], *, name: str = "pipe:-", **kwargs) -> None:
        super().__init__(**kwargs)
        self._stream = stream
        self._name = name
        self._eof = False

    def describe(self) -> str:
        return self._name

    def _is_open(self) -> bool:
        return not self._eof

    def _open_raw(self) -> None:
        pass

    def _close_raw(self) -> None:
        self._eof = True

    def _read_raw(self) -> Optional[Tuple[int, bytes]]:
        if self._eof:
            return None
        reader = getattr(self._stream, "read1", self._stream.read)
        data = reader(self.chunk_bytes)
        if data == b"":
            self._eof = True
            return None
        pos = self._pos
        self._pos += len(data)
        return pos, data


def open_source(spec: str, **kwargs) -> StreamSource:
    """Build a source from a CLI/request spec string.

    ``tail:<path>`` (or a bare path) follows a file;
    ``tail-once:<path>`` reads a file to EOF and ends;
    ``socket:<path>`` dials a Unix socket; ``tcp:<host>:<port>`` dials
    TCP; ``pipe:-`` reads stdin.
    """
    scheme, sep, rest = spec.partition(":")
    if not sep:
        return FileTailSource(spec, **kwargs)
    if scheme == "tail":
        return FileTailSource(rest, **kwargs)
    if scheme == "tail-once":
        return FileTailSource(rest, follow=False, **kwargs)
    if scheme == "socket":
        return SocketSource(rest, **kwargs)
    if scheme == "tcp":
        host, _, port = rest.rpartition(":")
        if not host:
            raise ValueError(f"tcp source needs host:port, got {spec!r}")
        return SocketSource((host, int(port)), **kwargs)
    if scheme == "pipe":
        import sys

        if rest in ("-", ""):
            return PipeSource(sys.stdin.buffer, **kwargs)
        return PipeSource(
            open(rest, "rb"), name=f"pipe:{rest}", **kwargs
        )
    # no known scheme: treat the whole spec as a file path (Windows
    # drive letters would land here too).
    return FileTailSource(spec, **kwargs)
