"""CRC-verified stream watermarks: resume a killed consumer exactly.

The consumer commits a :class:`Watermark` after every applied batch:
the stream byte offset up to which every record has been applied, and
the ``graph_version`` the session reached doing so.  The file is tiny,
written atomically (temp + fsync + rename, via :func:`repro.ioutil.
atomic_write`), and carries a CRC32 over its payload so a torn or
rotted checkpoint reads as *absent* rather than as a wrong resume
point.

Delivery semantics this enables (DESIGN.md §16): the watermark is
written *after* the batch is applied, so a SIGKILL between apply and
commit re-sends exactly one batch on resume — and because every edge
edit is idempotent (:meth:`repro.graph.delta.DeltaCSR.add_edge` /
``remove_edge`` are no-ops on replay), at-least-once delivery plus
idempotent apply nets out to exactly-once *effect*.  A SIGKILL at any
other point resumes from the committed offset with zero duplicate
application.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Optional

from ..errors import CheckpointError
from ..ioutil import atomic_write, crc32_chunks

__all__ = ["Watermark", "StreamCheckpoint"]

#: format marker so future layout changes can migrate explicitly.
_FORMAT = "repro-stream-watermark-v1"


@dataclass(frozen=True)
class Watermark:
    """Committed stream position after one applied batch."""

    #: stream byte offset: every record ending at or before this
    #: offset has been applied and must not be re-applied on resume.
    offset: int
    #: graph-state epoch the session reached applying that prefix.
    graph_version: int
    #: canonical label CRC at that version (cross-checkable against
    #: the serve journal's ``completed`` stamps and the batch oracle).
    labels_crc32: Optional[int] = None
    #: batches / records applied so far (operator telemetry).
    batches: int = 0
    records: int = 0


class StreamCheckpoint:
    """Atomic, CRC-guarded persistence for one stream's watermark."""

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        #: checkpoints that failed their CRC or parse on load.
        self.corrupt_loads = 0

    def save(self, watermark: Watermark) -> None:
        """Durably publish ``watermark`` (whole or not at all)."""
        payload = json.dumps(asdict(watermark), sort_keys=True)
        doc = {
            "format": _FORMAT,
            "payload": payload,
            "crc32": crc32_chunks(payload.encode()),
        }
        with atomic_write(self.path, "w", encoding="utf-8") as f:
            json.dump(doc, f, sort_keys=True)
            f.write("\n")

    def load(self, *, strict: bool = False) -> Optional[Watermark]:
        """The committed watermark, or ``None``.

        A missing file means a fresh stream.  A corrupt file (torn
        write the atomic rename should have prevented, bit rot, a
        hand-edited payload) fails the CRC and is treated as absent —
        resuming from scratch re-applies idempotent edits, which is
        safe; resuming from a *wrong* offset would silently skip
        records, which is not.  ``strict=True`` raises a typed
        :class:`~repro.errors.CheckpointError` instead, for operators
        who want corruption loud.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as f:
                doc = json.load(f)
            if doc.get("format") != _FORMAT:
                raise ValueError(
                    f"unknown checkpoint format {doc.get('format')!r}"
                )
            payload = doc["payload"]
            want = int(doc["crc32"])
            got = crc32_chunks(payload.encode())
            if got != want:
                raise ValueError(
                    f"payload CRC mismatch (stored {want}, actual {got})"
                )
            fields = json.loads(payload)
            return Watermark(
                offset=int(fields["offset"]),
                graph_version=int(fields["graph_version"]),
                labels_crc32=fields.get("labels_crc32"),
                batches=int(fields.get("batches", 0)),
                records=int(fields.get("records", 0)),
            )
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError, OSError) as exc:
            self.corrupt_loads += 1
            if strict:
                raise CheckpointError(
                    f"corrupt stream checkpoint ({exc})", path=self.path
                ) from exc
            return None
