"""Incremental edge-record parsing over a live byte stream.

The stream parser turns the byte chunks a :class:`~repro.ingest.
sources.StreamSource` delivers into typed edge-edit records, under the
same policy regime as file ingestion:

* **Framing** is delegated to :class:`~repro.ingest.framing.
  LineFramer` — CRLF, torn records at disconnect boundaries, and a
  final record with no trailing newline are all handled byte-exactly,
  and replayed bytes from an at-least-once feed are trimmed before
  they can parse twice.
* **Record syntax** accepts both the plain edge-list dialect the file
  reader speaks and an NDJSON dialect for structured feeds::

      0 17            # insert edge 0 -> 17 (bare pair = insert)
      + 0 17          # insert, explicit
      - 3 4           # delete edge 3 -> 4
      {"add": [0, 17]}
      {"remove": [3, 4], "seq": 812}
      {"end": true}   # clean end-of-feed control record

  Comment (``#``) and blank lines are counted and skipped, exactly
  like the file reader.
* **Policy** routes through the existing :class:`~repro.graph.io.
  IngestReport` counters: ``strict`` raises a located
  :class:`~repro.errors.GraphIngestError`, ``repair`` coerces what it
  can (integral float ids), ``skip`` drops and counts.  Garbage
  injected mid-feed therefore becomes a counted, sampled report entry
  — never a crashed consumer.
* **Dedup window** — at-least-once feeds may re-send records the
  byte-offset trim cannot catch (a feeder that re-serializes rather
  than replays).  Records carrying an explicit ``seq`` are remembered
  in a bounded window and silent re-sends are dropped and counted as
  ``duplicates``.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from ..errors import GraphIngestError
from ..graph.io import IngestReport, _coerce_id
from .framing import Frame, LineFramer

__all__ = ["EdgeRecord", "RecordParser"]

#: record kinds a parsed frame can produce.
RECORD_KINDS = ("add", "remove", "end")


@dataclass(frozen=True)
class EdgeRecord:
    """One parsed edge edit (or the ``end`` control record).

    ``end_offset`` is the watermark value that commits this record:
    a checkpoint at ``end_offset`` means this record and everything
    before it has been applied.
    """

    kind: str
    u: int
    v: int
    end_offset: int
    lineno: int
    seq: Optional[int] = None

    @property
    def edge(self) -> tuple:
        return (self.u, self.v)


class RecordParser:
    """Incremental, policy-governed record parser for edge feeds."""

    def __init__(
        self,
        *,
        on_error: str = "skip",
        num_nodes: Optional[int] = None,
        report: Optional[IngestReport] = None,
        dedup_window: int = 1024,
        start_offset: int = 0,
        path: str = "<stream>",
    ) -> None:
        from ..graph.io import _check_policy

        _check_policy(on_error)
        self.on_error = on_error
        self.num_nodes = num_nodes
        self.path = path
        self.report = report or IngestReport(path=path, policy=on_error)
        self.framer = LineFramer(start_offset=start_offset)
        self._window_size = max(0, int(dedup_window))
        self._window: "OrderedDict[int, None]" = OrderedDict()

    # -- feeding --------------------------------------------------------
    @property
    def offset(self) -> int:
        """The framer's absolute stream offset (next unseen byte)."""
        return self.framer.offset

    def feed(self, data: bytes) -> List[EdgeRecord]:
        """Parse a chunk arriving at the current offset."""
        return self._parse_frames(self.framer.feed(data))

    def feed_at(self, offset: int, data: bytes) -> List[EdgeRecord]:
        """Parse a chunk carrying its own absolute offset (replay-safe)."""
        return self._parse_frames(self.framer.feed_at(offset, data))

    def flush(self) -> List[EdgeRecord]:
        """Parse the final unterminated record at a clean end of feed."""
        frame = self.framer.flush()
        return self._parse_frames([frame]) if frame is not None else []

    def note_disconnect(self) -> int:
        """Mark a disconnect boundary whose buffered tail is dead.

        Only needed when the peer will *not* replay the torn record
        (sources that resume contiguously just keep feeding and the
        overlap trim heals the tear).  The dropped tail is counted as
        one malformed record under the lenient policies.
        """
        partial = self.framer.partial
        dropped = self.framer.discard_partial()
        if dropped:
            self.report.lines += 1
            self.report.note(
                "malformed",
                f"line {self.framer.lineno}",
                partial.decode("utf-8", "replace"),
                f"torn record ({dropped} bytes) at disconnect boundary",
            )
        return dropped

    # -- parsing --------------------------------------------------------
    def _parse_frames(self, frames: List[Frame]) -> List[EdgeRecord]:
        records: List[EdgeRecord] = []
        for frame in frames:
            self.report.lines += 1
            text = frame.text.strip()
            if not text:
                self.report.blanks += 1
                continue
            if text.startswith("#"):
                self.report.comments += 1
                continue
            record = (
                self._parse_json(frame, text)
                if text.startswith("{")
                else self._parse_text(frame, text)
            )
            if record is None:
                continue
            if record.seq is not None and self._is_duplicate(record.seq):
                self.report.duplicates += 1
                continue
            if record.kind != "end":
                self.report.edges += 1
            records.append(record)
        return records

    def _is_duplicate(self, seq: int) -> bool:
        if self._window_size == 0:
            return False
        if seq in self._window:
            return True
        self._window[seq] = None
        while len(self._window) > self._window_size:
            self._window.popitem(last=False)
        return False

    def _reject(
        self, frame: Frame, category: str, reason: str
    ) -> None:
        if self.on_error == "strict":
            raise GraphIngestError(
                f"{reason} in record {frame.text!r}",
                path=self.path,
                line=frame.lineno,
            )
        self.report.note(
            category, f"line {frame.lineno}", frame.text, reason
        )

    def _parse_ids(
        self, frame: Frame, toks: List[str]
    ) -> Optional[tuple]:
        vals = []
        repaired = False
        for tok in toks:
            v, rep, problem = _coerce_id(
                tok, self.on_error, self.num_nodes
            )
            if problem is not None:
                self._reject(frame, problem[0], problem[1])
                return None
            repaired |= rep
            vals.append(v)
        if repaired:
            self.report.repaired += 1
        return tuple(vals)

    def _parse_text(
        self, frame: Frame, text: str
    ) -> Optional[EdgeRecord]:
        toks = text.split()
        kind = "add"
        if toks[0] in ("+", "-"):
            kind = "add" if toks[0] == "+" else "remove"
            toks = toks[1:]
        if len(toks) < 2:
            self._reject(
                frame, "malformed", "expected at least two columns"
            )
            return None
        if len(toks) > 2:
            self.report.extra_columns += 1
        ids = self._parse_ids(frame, toks[:2])
        if ids is None:
            return None
        return EdgeRecord(
            kind=kind,
            u=ids[0],
            v=ids[1],
            end_offset=frame.end_offset,
            lineno=frame.lineno,
        )

    def _parse_json(
        self, frame: Frame, text: str
    ) -> Optional[EdgeRecord]:
        try:
            obj = json.loads(text)
            if not isinstance(obj, dict):
                raise ValueError("record must be a JSON object")
        except ValueError as exc:
            self._reject(frame, "malformed", f"bad JSON record ({exc})")
            return None
        seq = obj.get("seq")
        if seq is not None:
            try:
                seq = int(seq)
            except (TypeError, ValueError):
                self._reject(
                    frame, "malformed", f"non-integer seq {seq!r}"
                )
                return None
        if obj.get("end"):
            return EdgeRecord(
                kind="end",
                u=-1,
                v=-1,
                end_offset=frame.end_offset,
                lineno=frame.lineno,
                seq=seq,
            )
        kind = None
        pair = None
        for key in ("add", "remove"):
            if key in obj:
                if kind is not None:
                    self._reject(
                        frame,
                        "malformed",
                        "record carries both 'add' and 'remove'",
                    )
                    return None
                kind, pair = key, obj[key]
        if kind is None:
            self._reject(
                frame,
                "malformed",
                "JSON record needs 'add', 'remove', or 'end'",
            )
            return None
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            self._reject(
                frame,
                "malformed",
                f"{kind!r} needs a [u, v] pair, got {pair!r}",
            )
            return None
        ids = self._parse_ids(frame, [str(pair[0]), str(pair[1])])
        if ids is None:
            return None
        return EdgeRecord(
            kind=kind,
            u=ids[0],
            v=ids[1],
            end_offset=frame.end_offset,
            lineno=frame.lineno,
            seq=seq,
        )
