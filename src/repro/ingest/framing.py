"""Byte-exact incremental line framing, shared by file and stream
ingestion.

Both the chunked edge-list reader (:func:`repro.graph.io.
read_edge_list`) and the live stream parser (:mod:`repro.ingest.
parser`) face the same three framing hazards:

* **CRLF line endings** — SNAP/KONECT mirrors and Windows-produced
  feeds terminate records with ``\\r\\n``; the ``\\r`` must not leak
  into the last token of a record.
* **A final record with no trailing newline** — a file whose writer
  was killed mid-append, or a feed flushed without a terminator, still
  carries one complete record that must be parsed, not dropped.
* **Torn records at disconnect boundaries** — a feed that drops
  mid-record leaves a prefix in the buffer; when the peer replays from
  an earlier offset after the redial, the overlap must be trimmed
  byte-exactly rather than parsed twice.

:class:`LineFramer` solves all three once.  It consumes raw byte
chunks (which may arrive at arbitrary split points), emits complete
records with their **absolute end offset** in the stream — the unit
the checkpoint watermark and the dedup machinery are keyed on — and
keeps at most one partial record buffered.  It deliberately knows
nothing about record *content*: tokenizing and policy live in the
callers, so the framer stays a leaf both ``repro.graph`` and
``repro.ingest`` can import.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["Frame", "LineFramer"]


@dataclass(frozen=True)
class Frame:
    """One complete record produced by the framer.

    ``end_offset`` is the absolute stream offset of the first byte
    *after* this record's terminator (or after its last byte for an
    unterminated final record): committing a watermark at
    ``end_offset`` means exactly this record and everything before it.
    """

    end_offset: int
    lineno: int
    text: str


class LineFramer:
    """Incremental splitter of a byte stream into newline frames.

    Feed it chunks in stream order with :meth:`feed` (or, for
    at-least-once feeds that may replay, :meth:`feed_at` with the
    chunk's absolute offset — overlap with already-framed bytes is
    trimmed, which is byte-level duplicate suppression).  ``\\n``
    terminates a frame; one trailing ``\\r`` is stripped so CRLF input
    frames identically to LF input.  Call :meth:`flush` at end of
    stream to surface a final unterminated record, or
    :meth:`discard_partial` at a disconnect boundary whose tail will
    never be completed.
    """

    def __init__(self, *, start_offset: int = 0) -> None:
        #: absolute offset of the first byte of the partial buffer.
        self._base = int(start_offset)
        self._buf = bytearray()
        #: 1-based line counter (frames emitted + partials discarded).
        self.lineno = 0
        #: torn partial records dropped at disconnect boundaries.
        self.partial_discards = 0
        #: duplicate bytes trimmed by :meth:`feed_at` overlap checks.
        self.overlap_bytes = 0
        #: bytes skipped over a forward gap (a feed that lost data).
        self.gap_bytes = 0

    # -- position -------------------------------------------------------
    @property
    def offset(self) -> int:
        """Absolute offset of the next byte the framer expects."""
        return self._base + len(self._buf)

    @property
    def partial(self) -> bytes:
        """The buffered (incomplete) record tail, if any."""
        return bytes(self._buf)

    # -- feeding --------------------------------------------------------
    def feed(self, data: bytes) -> List[Frame]:
        """Append ``data`` at the current offset; return new frames."""
        if data:
            self._buf += data
        return self._drain()

    def feed_at(self, offset: int, data: bytes) -> List[Frame]:
        """Feed a chunk that carries its own absolute stream offset.

        At-least-once sources re-deliver bytes after a redial (and the
        deterministic ``dup`` fault re-delivers the previous chunk on
        purpose); any prefix of ``data`` the framer has already seen
        is trimmed and counted instead of framed twice.  A *forward*
        gap — a feed that skipped bytes — is tolerated and counted:
        the chunk is consumed as if contiguous, so at worst one record
        spanning the gap parses as garbage and is policed downstream.
        """
        expected = self.offset
        offset = int(offset)
        if offset < expected:
            seen = expected - offset
            if seen >= len(data):
                self.overlap_bytes += len(data)
                return []
            self.overlap_bytes += seen
            data = data[seen:]
        elif offset > expected:
            self.gap_bytes += offset - expected
            self._base += offset - expected
        return self.feed(data)

    def _drain(self) -> List[Frame]:
        frames: List[Frame] = []
        while True:
            i = self._buf.find(b"\n")
            if i < 0:
                return frames
            raw = bytes(self._buf[:i])
            del self._buf[: i + 1]
            self._base += i + 1
            if raw.endswith(b"\r"):
                raw = raw[:-1]
            self.lineno += 1
            frames.append(
                Frame(
                    end_offset=self._base,
                    lineno=self.lineno,
                    text=raw.decode("utf-8", "replace"),
                )
            )

    # -- end / disconnect boundaries ------------------------------------
    def flush(self) -> Optional[Frame]:
        """Emit the final unterminated record, if one is buffered.

        Call exactly once at a *clean* end of stream: a writer killed
        before its last newline still produced a parseable record.
        """
        if not self._buf:
            return None
        raw = bytes(self._buf)
        self._base += len(raw)
        self._buf.clear()
        if raw.endswith(b"\r"):
            raw = raw[:-1]
        self.lineno += 1
        return Frame(
            end_offset=self._base,
            lineno=self.lineno,
            text=raw.decode("utf-8", "replace"),
        )

    def discard_partial(self) -> int:
        """Drop a torn record tail at a disconnect boundary.

        Returns the number of bytes dropped.  The framer's offset
        still advances past them: the peer will either replay the
        whole record (overlap-trimmed by :meth:`feed_at` back to the
        record start it never completed) or has lost it for good —
        either way the next complete line frames cleanly.
        """
        dropped = len(self._buf)
        if dropped:
            self._base += dropped
            self._buf.clear()
            self.lineno += 1
            self.partial_discards += 1
        return dropped
