"""Graph traversal kernels.

Section 4.2 of the paper: parallel BFS for the phase-1 reachability
computations (small-world graphs have few BFS levels with large, fully
parallel frontiers), plain sequential DFS for the phase-2 per-task
traversals (the parallel BFS has too high a fixed cost for small
partitions).  This package provides both, plus the direction-optimizing
BFS of Beamer et al. [10] as an optional extension.
"""

from .frontier import expand_frontier
from .bfs import BFSResult, bfs_levels, bfs_mask, bfs_color_transform
from .dfs import dfs_collect_colored, dfs_reach_mask
from .dobfs import direction_optimizing_bfs

__all__ = [
    "expand_frontier",
    "BFSResult",
    "bfs_levels",
    "bfs_mask",
    "bfs_color_transform",
    "dfs_collect_colored",
    "dfs_reach_mask",
    "direction_optimizing_bfs",
]
