"""Level-synchronous breadth-first search kernels.

These are the "efficient implementation of the breadth-first search
order graph traversal" the paper uses for the phase-1 reachability
computations (Section 4.2, citing [15, 10]).  On small-world graphs a
BFS has few levels with very large frontiers, so each level is one
wide data-parallel region — exactly what the trace records.

Three entry points:

* :func:`bfs_levels` — plain distance-labelled BFS (analysis use).
* :func:`bfs_mask` — reachability restricted by colour/mark filters.
* :func:`bfs_color_transform` — the Algorithm 5 traversal: visit nodes
  whose colour is in a transition map and recolour them on visit,
  pruning everywhere else.  Used by Par-FWBW for both the FW pass
  (``{c: cfw}``) and the BW pass (``{c: cbw, cfw: cscc}``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..kernels import bfs_level_transform, dedup_sorted
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from ..runtime.trace import WorkTrace
from .frontier import expand_frontier

__all__ = ["BFSResult", "bfs_levels", "bfs_mask", "bfs_color_transform"]


@dataclass
class BFSResult:
    """Outcome of one BFS traversal."""

    #: number of levels (== eccentricity of the source within the
    #: visited region).
    levels: int
    #: total adjacency entries scanned.
    edges_scanned: int
    #: nodes visited (including the source).
    nodes_visited: int
    #: per transition target colour: the nodes recoloured to it
    #: (only for :func:`bfs_color_transform`).
    recolored: Dict[int, np.ndarray] = field(default_factory=dict)


def _graph_arrays(g, direction: str) -> tuple[np.ndarray, np.ndarray]:
    if direction == "out":
        return g.indptr, g.indices
    if direction == "in":
        return g.in_indptr, g.in_indices
    raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")


def bfs_levels(g, source: int, *, direction: str = "out") -> np.ndarray:
    """Distance from ``source`` to every node (-1 when unreachable)."""
    indptr, indices = _graph_arrays(g, direction)
    n = g.num_nodes
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        targets = expand_frontier(indptr, indices, frontier)
        targets = targets[dist[targets] == -1]
        if targets.size == 0:
            break
        dist[targets] = level
        frontier = dedup_sorted(targets, n)
    return dist


def bfs_mask(
    g,
    sources: np.ndarray | int,
    *,
    direction: str = "out",
    allowed: np.ndarray | None = None,
    trace: WorkTrace | None = None,
    phase: str = "bfs",
    cost: CostModel = DEFAULT_COST_MODEL,
) -> tuple[np.ndarray, BFSResult]:
    """Reachability mask from ``sources`` through ``allowed`` nodes.

    ``allowed`` (bool mask or None) gates which nodes may be visited;
    sources are visited unconditionally.  Each level is recorded into
    ``trace`` as a dynamic parallel-for.
    """
    indptr, indices = _graph_arrays(g, direction)
    n = g.num_nodes
    visited = np.zeros(n, dtype=bool)
    frontier = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    visited[frontier] = True
    levels = 0
    edges = 0
    nodes_visited = int(frontier.size)
    while frontier.size:
        targets = expand_frontier(indptr, indices, frontier)
        scanned = int(targets.size)
        edges += scanned
        if trace is not None:
            trace.parallel_for(
                phase,
                work=cost.bfs(nodes=frontier.size, edges=scanned),
                items=int(frontier.size),
            )
        if scanned == 0:
            break
        ok = ~visited[targets]
        if allowed is not None:
            ok &= allowed[targets]
        targets = targets[ok]
        if targets.size == 0:
            break
        visited[targets] = True
        frontier = dedup_sorted(targets, n)
        nodes_visited += int(frontier.size)
        levels += 1
    return visited, BFSResult(
        levels=levels, edges_scanned=edges, nodes_visited=nodes_visited
    )


def bfs_color_transform(
    g,
    pivot: int,
    transitions: Dict[int, int],
    color: np.ndarray,
    *,
    direction: str = "out",
    trace: WorkTrace | None = None,
    phase: str = "par_fwbw",
    cost: CostModel = DEFAULT_COST_MODEL,
) -> BFSResult:
    """Algorithm 5's pruned traversal with on-visit recolouring.

    Starting at ``pivot`` (recoloured first), traverse ``direction``
    edges; a node is visited iff its current colour is a key of
    ``transitions``, upon which it is recoloured to the mapped value
    and traversal continues through it; any other colour prunes the
    traversal.  Returns the nodes recoloured per target colour —
    the BW pass reads its SCC set straight out of
    ``result.recolored[cscc]``.
    """
    indptr, indices = _graph_arrays(g, direction)
    collected: Dict[int, List[np.ndarray]] = {
        new: [] for new in transitions.values()
    }
    pivot_color = int(color[pivot])
    if pivot_color not in transitions:
        raise ValueError(
            f"pivot colour {pivot_color} not in transition map {transitions}"
        )
    new_pivot_color = transitions[pivot_color]
    color[pivot] = new_pivot_color
    collected[new_pivot_color].append(np.array([pivot], dtype=np.int64))
    frontier = np.array([pivot], dtype=np.int64)
    levels = 0
    edges = 0
    nodes_visited = 1
    while frontier.size:
        hits, scanned = bfs_level_transform(
            indptr, indices, frontier, color, transitions
        )
        edges += scanned
        if trace is not None:
            trace.parallel_for(
                phase,
                work=cost.bfs(nodes=frontier.size, edges=scanned),
                items=int(frontier.size),
            )
        if scanned == 0:
            break
        next_parts: List[np.ndarray] = []
        for new, hit in zip(transitions.values(), hits):
            if hit.size == 0:
                continue
            collected[new].append(hit)
            next_parts.append(hit)
        if not next_parts:
            break
        frontier = np.concatenate(next_parts)
        nodes_visited += int(frontier.size)
        levels += 1
    recolored = {
        new: (
            np.concatenate(parts)
            if parts
            else np.empty(0, dtype=np.int64)
        )
        for new, parts in collected.items()
    }
    return BFSResult(
        levels=levels,
        edges_scanned=edges,
        nodes_visited=nodes_visited,
        recolored=recolored,
    )
