"""Frontier expansion: the core CSR gather.

Given a set of frontier nodes, collect all their adjacency-list entries
in one shot — the inner loop of every level-synchronous kernel here
(BFS levels, trim degree counts, WCC propagation).

Since the kernel layer landed this module is a thin façade: the actual
implementations live in :mod:`repro.kernels` (the vectorized
ragged-gather reference with its contiguous-range fast path, plus the
``@njit`` loop when the numba backend is active) and are selected by
the kernel registry at call time.  The public signature gained two
options there: ``unique=True`` returns density-adaptively deduplicated
sorted targets, and int32 CSR inputs are overflow-safe (counts are
promoted before the cumulative-sum index arithmetic).
"""

from __future__ import annotations

from ..kernels import expand_frontier

__all__ = ["expand_frontier"]
