"""Direction-optimizing BFS (Beamer, Asanović, Patterson [10]).

Section 4.2 notes that post-Graph500 BFS improvements "may improve our
performance results even further"; direction optimization is the main
one.  When the frontier grows large (as it does after 2-3 levels on a
small-world graph), switching from top-down edge expansion to a
bottom-up sweep — every unvisited node checks whether *any* parent is
in the frontier and stops at the first hit — skips the bulk of the
edge scans.  Provided as an optional kernel for the Par-FWBW forward
pass and benchmarked against the level-synchronous BFS.
"""

from __future__ import annotations

import numpy as np

from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from ..runtime.trace import WorkTrace
from .bfs import BFSResult
from .frontier import expand_frontier

__all__ = ["direction_optimizing_bfs"]


def direction_optimizing_bfs(
    g,
    source: int,
    *,
    direction: str = "out",
    allowed: np.ndarray | None = None,
    alpha: float = 15.0,
    trace: WorkTrace | None = None,
    phase: str = "dobfs",
    cost: CostModel = DEFAULT_COST_MODEL,
) -> tuple[np.ndarray, BFSResult]:
    """Reachability mask via hybrid top-down / bottom-up BFS.

    Heuristic (Beamer et al.): go bottom-up when the frontier's
    out-edge count exceeds ``1/alpha`` of the edges incident to
    unvisited nodes.  The bottom-up sweep scans the *reverse* adjacency
    of every unvisited candidate, breaking at the first frontier
    parent; its savings come from those early exits.

    Returns the same ``(mask, BFSResult)`` shape as
    :func:`~repro.traversal.bfs.bfs_mask`; ``edges_scanned`` counts the
    entries actually inspected (including early-exited rows), which is
    what the comparison bench reports.
    """
    if direction == "out":
        fwd_ptr, fwd_idx = g.indptr, g.indices
        rev_ptr, rev_idx = g.in_indptr, g.in_indices
    elif direction == "in":
        fwd_ptr, fwd_idx = g.in_indptr, g.in_indices
        rev_ptr, rev_idx = g.indptr, g.indices
    else:
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")

    n = g.num_nodes
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    in_frontier = np.zeros(n, dtype=bool)
    frontier = np.array([source], dtype=np.int64)
    levels = 0
    edges = 0
    nodes_visited = 1
    candidates = (
        allowed.copy() if allowed is not None else np.ones(n, dtype=bool)
    )
    candidates[source] = False

    while frontier.size:
        frontier_degree = int(
            (fwd_ptr[frontier + 1] - fwd_ptr[frontier]).sum()
        )
        unvisited = np.flatnonzero(candidates)
        unvisited_degree = int(
            (rev_ptr[unvisited + 1] - rev_ptr[unvisited]).sum()
        )
        bottom_up = frontier_degree * alpha > unvisited_degree

        if bottom_up:
            in_frontier[:] = False
            in_frontier[frontier] = True
            next_nodes: list[int] = []
            scanned = 0
            # Per-candidate early-exit scan of reverse adjacency.
            for u in unvisited:
                row = rev_idx[rev_ptr[u] : rev_ptr[u + 1]]
                hit = in_frontier[row]
                k = int(np.argmax(hit)) if row.shape[0] else 0
                if row.shape[0] and hit[k]:
                    scanned += k + 1
                    next_nodes.append(int(u))
                else:
                    scanned += int(row.shape[0])
            new_frontier = np.array(next_nodes, dtype=np.int64)
        else:
            targets = expand_frontier(fwd_ptr, fwd_idx, frontier)
            scanned = int(targets.size)
            ok = candidates[targets]
            new_frontier = np.unique(targets[ok])

        edges += scanned
        if trace is not None:
            trace.parallel_for(
                phase,
                work=cost.bfs(
                    nodes=(unvisited.size if bottom_up else frontier.size),
                    edges=scanned,
                ),
                items=int(unvisited.size if bottom_up else frontier.size),
            )
        if new_frontier.size == 0:
            break
        visited[new_frontier] = True
        candidates[new_frontier] = False
        frontier = new_frontier
        nodes_visited += int(frontier.size)
        levels += 1

    return visited, BFSResult(
        levels=levels, edges_scanned=edges, nodes_visited=nodes_visited
    )
