"""Sequential depth-first traversals.

Section 4.2: "for the same computation in the recursive FW-BW step, we
use DFS instead of BFS ... the BFS implementation, optimized for
parallel traversal, has a larger fixed cost than simple sequential
DFS."  Phase-2 partitions are small; their counted work is charged at
the cost model's DFS (pointer-chasing) rate when recorded.

:func:`dfs_collect_colored` is now dispatched through the kernel layer
(:mod:`repro.kernels`): the ``numpy`` reference keeps the interpreted
stack loop, the accelerated backend substitutes a compiled (or
level-synchronous vectorized) traversal.  Since the kernel layer the
per-colour collections come back as **sorted** :class:`numpy.ndarray`
rather than visit-ordered lists — visited sets are order-invariant, and
the sorted contract is what lets the backends agree bit-for-bit.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..kernels import dfs_collect_colored

__all__ = ["dfs_collect_colored", "dfs_reach_mask"]


def dfs_reach_mask(
    g,
    source: int,
    *,
    direction: str = "out",
    allowed: np.ndarray | None = None,
) -> Tuple[np.ndarray, int]:
    """Reachability mask from ``source`` via iterative DFS.

    ``allowed`` gates visitable nodes (the source is always visited).
    Returns ``(visited_mask, edges_scanned)``.
    """
    if direction == "out":
        indptr, indices = g.indptr, g.indices
    elif direction == "in":
        indptr, indices = g.in_indptr, g.in_indices
    else:
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    visited = np.zeros(g.num_nodes, dtype=bool)
    visited[source] = True
    stack = [int(source)]
    edges = 0
    while stack:
        u = stack.pop()
        row = indices[indptr[u] : indptr[u + 1]]
        edges += int(row.shape[0])
        for v in row:
            if not visited[v] and (allowed is None or allowed[v]):
                visited[v] = True
                stack.append(int(v))
    return visited, edges
