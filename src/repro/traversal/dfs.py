"""Sequential depth-first traversals.

Section 4.2: "for the same computation in the recursive FW-BW step, we
use DFS instead of BFS ... the BFS implementation, optimized for
parallel traversal, has a larger fixed cost than simple sequential
DFS."  Phase-2 partitions are small, so these kernels run a plain
Python loop over CSR slices; their counted work is charged at the cost
model's DFS (pointer-chasing) rate when recorded.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = ["dfs_collect_colored", "dfs_reach_mask"]


def dfs_collect_colored(
    indptr: np.ndarray,
    indices: np.ndarray,
    pivot: int,
    transitions: Dict[int, int],
    color: np.ndarray,
) -> Tuple[Dict[int, List[int]], int]:
    """DFS twin of :func:`~repro.traversal.bfs.bfs_color_transform`.

    Visits nodes whose colour is a key of ``transitions``, recolours
    them to the mapped value, continues through them, prunes elsewhere.
    Returns ``(collected, edges_scanned)`` where ``collected[new]`` is
    the list of nodes recoloured to ``new`` (in visit order).
    """
    pivot_color = int(color[pivot])
    if pivot_color not in transitions:
        raise ValueError(
            f"pivot colour {pivot_color} not in transition map {transitions}"
        )
    collected: Dict[int, List[int]] = {new: [] for new in transitions.values()}
    new_pivot = transitions[pivot_color]
    color[pivot] = new_pivot
    collected[new_pivot].append(pivot)
    stack = [pivot]
    edges = 0
    while stack:
        u = stack.pop()
        row = indices[indptr[u] : indptr[u + 1]]
        edges += int(row.shape[0])
        for v in row:
            cv = int(color[v])
            if cv in transitions:
                nv = transitions[cv]
                color[v] = nv
                collected[nv].append(int(v))
                stack.append(int(v))
    return collected, edges


def dfs_reach_mask(
    g,
    source: int,
    *,
    direction: str = "out",
    allowed: np.ndarray | None = None,
) -> Tuple[np.ndarray, int]:
    """Reachability mask from ``source`` via iterative DFS.

    ``allowed`` gates visitable nodes (the source is always visited).
    Returns ``(visited_mask, edges_scanned)``.
    """
    if direction == "out":
        indptr, indices = g.indptr, g.indices
    elif direction == "in":
        indptr, indices = g.in_indptr, g.in_indices
    else:
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    visited = np.zeros(g.num_nodes, dtype=bool)
    visited[source] = True
    stack = [int(source)]
    edges = 0
    while stack:
        u = stack.pop()
        row = indices[indptr[u] : indptr[u + 1]]
        edges += int(row.shape[0])
        for v in row:
            if not visited[v] and (allowed is None or allowed[v]):
                visited[v] = True
                stack.append(int(v))
    return visited, edges
