"""ASCII line charts for bench output (the Figure 6 curves as text).

No plotting library is available offline, and the figures the paper
prints are simple per-panel line charts — a character grid renders
their shape faithfully enough to eyeball the knees.
"""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = ["ascii_chart"]

_MARKS = "ox*+#@%&"


def ascii_chart(
    series: Dict[str, Sequence[float]],
    x_labels: Sequence[object],
    *,
    height: int = 12,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Render named series over a shared x-axis as an ASCII chart.

    Each series gets a distinct mark; points landing on the same cell
    show the mark of the later series.  The y-axis starts at 0.
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(v) for v in series.values()}
    if lengths != {len(x_labels)}:
        raise ValueError("all series must match the x-axis length")
    y_max = max(max(v) for v in series.values())
    y_max = y_max if y_max > 0 else 1.0
    n = len(x_labels)
    col_width = max(max(len(str(x)) for x in x_labels) + 1, 6)
    width = n * col_width

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, values) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        for i, v in enumerate(values):
            row = height - 1 - int(round((v / y_max) * (height - 1)))
            col = i * col_width + col_width // 2
            grid[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        y_val = y_max * (height - 1 - r) / (height - 1)
        lines.append(f"{y_val:7.1f} |" + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(
        " " * 9
        + "".join(str(x).center(col_width) for x in x_labels)
    )
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 9 + legend + (f"   ({y_label})" if y_label else ""))
    return "\n".join(lines)
