"""Benchmark harness shared by the ``benchmarks/`` targets.

Runners that execute the paper's algorithms on the dataset surrogates,
replay their traces on the simulated machine, and format the resulting
tables/series in the layout of the paper's tables and figures.
"""

from .harness import (
    MethodRun,
    SpeedupSeries,
    run_method,
    run_tarjan_baseline,
    speedup_series,
    breakdown_series,
    FIG6_METHODS,
)
from .tables import format_table, format_speedup_table, print_table
from .ascii import ascii_chart

__all__ = [
    "MethodRun",
    "SpeedupSeries",
    "run_method",
    "run_tarjan_baseline",
    "speedup_series",
    "breakdown_series",
    "FIG6_METHODS",
    "format_table",
    "format_speedup_table",
    "print_table",
    "ascii_chart",
]
