"""Experiment runners for the figure/table benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core import strongly_connected_components
from ..core.result import SCCResult, same_partition
from ..graph import CSRGraph
from ..runtime import Machine, STANDARD_THREAD_COUNTS

__all__ = [
    "MethodRun",
    "SpeedupSeries",
    "run_method",
    "run_tarjan_baseline",
    "speedup_series",
    "breakdown_series",
    "FIG6_METHODS",
]

#: the three algorithms Figure 6 plots, in legend order.
FIG6_METHODS = ("baseline", "method1", "method2")


@dataclass
class MethodRun:
    """One algorithm execution plus its simulated times per threads."""

    method: str
    result: SCCResult
    #: simulated total time per thread count.
    times: Dict[int, float] = field(default_factory=dict)
    #: simulated per-phase times per thread count.
    phase_times: Dict[int, Dict[str, float]] = field(default_factory=dict)


@dataclass
class SpeedupSeries:
    """Speedups vs. the sequential baseline (one Figure 6 panel line)."""

    method: str
    threads: List[int]
    speedups: List[float]


def run_method(
    g,
    method: str,
    *,
    machine: Machine | None = None,
    thread_counts: Sequence[int] = STANDARD_THREAD_COUNTS,
    engine=None,
    **kwargs,
) -> MethodRun:
    """Run ``method`` once and simulate it at every thread count.

    ``g`` is a graph, or (with ``engine``) a warm
    :class:`~repro.engine.session.GraphSession` — an
    :class:`~repro.engine.Engine` executes the run over its session
    cache, so a benchmark sweeping many methods over one graph loads
    and derives it exactly once.
    """
    machine = machine or Machine()
    if engine is None:
        result = strongly_connected_components(g, method, **kwargs)
    else:
        result = engine.run(g, method=method, **kwargs)
    run = MethodRun(method=method, result=result)
    for p in thread_counts:
        sim = machine.simulate(result.profile.trace, p)
        run.times[p] = sim.total_time
        run.phase_times[p] = dict(sim.phase_times)
    return run


def run_tarjan_baseline(
    g, *, machine: Machine | None = None, engine=None, **kwargs
) -> tuple[SCCResult, float]:
    """Run Tarjan and return (result, simulated sequential time)."""
    machine = machine or Machine()
    if engine is None:
        result = strongly_connected_components(g, "tarjan", **kwargs)
    else:
        result = engine.run(g, method="tarjan", **kwargs)
    t_seq = machine.simulate(result.profile.trace, 1).total_time
    return result, t_seq


def speedup_series(
    g: CSRGraph,
    *,
    methods: Sequence[str] = FIG6_METHODS,
    machine: Machine | None = None,
    thread_counts: Sequence[int] = STANDARD_THREAD_COUNTS,
    verify: bool = True,
    engine=None,
    **kwargs,
) -> tuple[List[SpeedupSeries], Dict[str, MethodRun]]:
    """The Figure 6 computation for one graph.

    Runs Tarjan for the denominator and each parallel method once over
    one warm engine session (the graph's transpose and derived
    artifacts are built once, not per method), optionally verifying
    every labelling against Tarjan's, and returns the speedup lines
    plus the raw runs (for the Figure 7 breakdowns).

    ``engine`` optionally supplies a caller-managed
    :class:`~repro.engine.Engine` (must be constructed with
    ``canonical=False`` to keep each algorithm's raw label order);
    by default an ephemeral one is created and closed.
    """
    from ..engine import Engine

    machine = machine or Machine()
    owns_engine = engine is None
    if owns_engine:
        # canonical=False: the bench compares partitions, and raw
        # labels stay bit-identical to calling the methods directly.
        engine = Engine(canonical=False)
    try:
        session = engine.session(g)
        tarjan_result, t_seq = run_tarjan_baseline(
            session, machine=machine, engine=engine
        )
        series: List[SpeedupSeries] = []
        runs: Dict[str, MethodRun] = {}
        for method in methods:
            run = run_method(
                session,
                method,
                machine=machine,
                thread_counts=thread_counts,
                engine=engine,
                **kwargs,
            )
            if verify and not same_partition(
                run.result.labels, tarjan_result.labels
            ):
                raise AssertionError(
                    f"{method} produced a different SCC partition "
                    "than Tarjan"
                )
            runs[method] = run
            series.append(
                SpeedupSeries(
                    method=method,
                    threads=list(thread_counts),
                    speedups=[
                        t_seq / run.times[p] for p in thread_counts
                    ],
                )
            )
        return series, runs
    finally:
        if owns_engine:
            engine.close()


def breakdown_series(
    run: MethodRun, thread_counts: Sequence[int] = STANDARD_THREAD_COUNTS
) -> Dict[str, List[float]]:
    """Figure 7 stacked-bar data: phase -> time per thread count."""
    phases: List[str] = []
    for p in thread_counts:
        for ph in run.phase_times[p]:
            if ph not in phases:
                phases.append(ph)
    return {
        ph: [run.phase_times[p].get(ph, 0.0) for p in thread_counts]
        for ph in phases
    }
