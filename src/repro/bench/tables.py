"""Plain-text table formatting for benchmark output.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep the layout consistent and readable in
captured pytest output.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_speedup_table", "print_table"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Fixed-width table with right-aligned numeric-ish columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_speedup_table(
    dataset: str,
    thread_counts: Sequence[int],
    series,
) -> str:
    """One Figure 6 panel as text: rows = methods, cols = thread counts."""
    headers = ["method"] + [f"p={p}" for p in thread_counts]
    rows = [
        [s.method] + [f"{x:.2f}" for x in s.speedups] for s in series
    ]
    return format_table(
        headers, rows, title=f"[{dataset}] speedup vs. Tarjan"
    )


def print_table(*args, **kwargs) -> None:
    print()
    print(format_table(*args, **kwargs))


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
