"""Compiled (numba ``@njit``) loop implementations of the hot kernels.

Each kernel is written as a tight nopython-compatible loop over the raw
CSR arrays — the shape the paper's OpenMP kernels have — plus a thin
Python wrapper adapting it to the registry contracts
(:mod:`repro.kernels.reference` documents them).

The module imports cleanly without numba: ``_njit`` degrades to the
identity decorator, leaving the loops as plain (slow) Python functions.
In that case nothing here is *registered* — the ``numba`` backend slots
keep the :mod:`repro.kernels.fastpath` implementations — but the loop
logic stays importable, so the parity suite exercises it in
interpreted mode on small graphs even on machines without numba.  With
numba installed the wrappers are registered over the fastpath slots
and the loops JIT-compile on first call.

Contract reminders that are easy to violate in loop form:

* visit/dedup order may differ, but every output array must be
  **sorted** (or exactly the reference's expansion order where the
  contract says so — ``trim_decrement``'s ``hit``);
* the WCC hook must keep ``np.minimum.at``'s sequential in-pass
  propagation and the compress round its snapshot semantics, or the
  iteration count (and the recorded trace) drifts;
* every scanned-edge count feeds the trace and must equal the
  reference's.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .registry import numba_available, register

__all__ = ["HAS_NUMBA"]

HAS_NUMBA = numba_available()

if HAS_NUMBA:  # pragma: no cover - exercised only with numba installed
    from numba import njit as _numba_njit

    def _njit(fn):
        return _numba_njit(cache=True)(fn)

else:

    def _njit(fn):
        return fn


_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY_U64 = np.empty(0, dtype=np.uint64)


@_njit
def _grow(arr, needed):
    cap = arr.shape[0] * 2
    if cap < needed:
        cap = needed
    out = np.empty(cap, arr.dtype)
    out[: arr.shape[0]] = arr
    return out


@_njit
def _expand_loop(indptr, indices, frontier, with_sources):
    total = 0
    for i in range(frontier.shape[0]):
        f = frontier[i]
        total += indptr[f + 1] - indptr[f]
    targets = np.empty(total, np.int64)
    n_src = total if with_sources else 0
    sources = np.empty(n_src, np.int64)
    pos = 0
    for i in range(frontier.shape[0]):
        f = frontier[i]
        for e in range(indptr[f], indptr[f + 1]):
            targets[pos] = indices[e]
            if with_sources:
                sources[pos] = f
            pos += 1
    return targets, sources


@_njit
def _delta_expand_loop(
    indptr, indices, tomb, add_indptr, add_indices, frontier, with_sources
):
    total = 0
    for i in range(frontier.shape[0]):
        f = frontier[i]
        for e in range(indptr[f], indptr[f + 1]):
            if not tomb[e]:
                total += 1
        total += add_indptr[f + 1] - add_indptr[f]
    targets = np.empty(total, np.int64)
    n_src = total if with_sources else 0
    sources = np.empty(n_src, np.int64)
    pos = 0
    for i in range(frontier.shape[0]):
        f = frontier[i]
        for e in range(indptr[f], indptr[f + 1]):
            if tomb[e]:
                continue
            targets[pos] = indices[e]
            if with_sources:
                sources[pos] = f
            pos += 1
        for e in range(add_indptr[f], add_indptr[f + 1]):
            targets[pos] = add_indices[e]
            if with_sources:
                sources[pos] = f
            pos += 1
    return targets, sources


@_njit
def _bfs_level_loop(indptr, indices, frontier, color, olds, news):
    n_trans = olds.shape[0]
    cap = 64
    hit_nodes = np.empty(cap, np.int64)
    hit_slots = np.empty(cap, np.int64)
    m = 0
    scanned = 0
    for i in range(frontier.shape[0]):
        f = frontier[i]
        scanned += indptr[f + 1] - indptr[f]
        for e in range(indptr[f], indptr[f + 1]):
            v = indices[e]
            cv = color[v]
            for t in range(n_trans):
                if olds[t] == cv:
                    color[v] = news[t]
                    if m >= hit_nodes.shape[0]:
                        hit_nodes = _grow(hit_nodes, m + 1)
                        hit_slots = _grow(hit_slots, m + 1)
                    hit_nodes[m] = v
                    hit_slots[m] = t
                    m += 1
                    break
    return hit_nodes[:m], hit_slots[:m], scanned


@_njit
def _effective_degrees_loop(
    indptr, indices, in_indptr, in_indices, nodes, color
):
    n = indptr.shape[0] - 1
    eff_out = np.zeros(n, np.int64)
    eff_in = np.zeros(n, np.int64)
    scanned = 0
    for i in range(nodes.shape[0]):
        u = nodes[i]
        cu = color[u]
        scanned += indptr[u + 1] - indptr[u]
        for e in range(indptr[u], indptr[u + 1]):
            if color[indices[e]] == cu:
                eff_out[u] += 1
        scanned += in_indptr[u + 1] - in_indptr[u]
        for e in range(in_indptr[u], in_indptr[u + 1]):
            if color[in_indices[e]] == cu:
                eff_in[u] += 1
    return eff_out, eff_in, scanned


@_njit
def _trim_decrement_loop(indptr, indices, cand, old_colors, color, eff):
    cap = 64
    hit = np.empty(cap, np.int64)
    m = 0
    scanned = 0
    for i in range(cand.shape[0]):
        u = cand[i]
        oc = old_colors[i]
        scanned += indptr[u + 1] - indptr[u]
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            if color[v] == oc:
                eff[v] -= 1
                if m >= hit.shape[0]:
                    hit = _grow(hit, m + 1)
                hit[m] = v
                m += 1
    return hit[:m], scanned


@_njit
def _wcc_hook_loop(u, v, wcc, active, both, compress):
    # np.minimum.at(wcc, u, wcc[v]) gathers wcc[v] as a snapshot BEFORE
    # accumulating, so labels written during a pull pass are not pulled
    # again within it — the loop must do the same or the iteration
    # count (and the trace) drifts.
    m = u.shape[0]
    vals = np.empty(m, np.int64)
    for i in range(m):
        vals[i] = wcc[v[i]]
    for i in range(m):
        if vals[i] < wcc[u[i]]:
            wcc[u[i]] = vals[i]
    if both:
        for i in range(m):
            vals[i] = wcc[u[i]]
        for i in range(m):
            if vals[i] < wcc[v[i]]:
                wcc[v[i]] = vals[i]
    if compress:
        tmp = np.empty(active.shape[0], np.int64)
        for j in range(active.shape[0]):
            tmp[j] = wcc[wcc[active[j]]]
        for j in range(active.shape[0]):
            wcc[active[j]] = tmp[j]


@_njit
def _trim2_pattern_loop(
    nbr_ptr, nbr_idx, back_ptr, back_idx, cands, color, eff_primary
):
    n_total = nbr_ptr.shape[0] - 1
    partner = np.full(n_total, -1, np.int64)
    has_back = np.zeros(n_total, np.bool_)
    scanned = 0
    for i in range(cands.shape[0]):
        u = cands[i]
        cu = color[u]
        scanned += nbr_ptr[u + 1] - nbr_ptr[u]
        for e in range(nbr_ptr[u], nbr_ptr[u + 1]):
            t = nbr_idx[e]
            if color[t] == cu:
                partner[u] = t  # last valid write, like the reference
    for i in range(cands.shape[0]):
        u = cands[i]
        scanned += back_ptr[u + 1] - back_ptr[u]
        for e in range(back_ptr[u], back_ptr[u + 1]):
            if back_idx[e] == partner[u]:
                has_back[u] = True
    cap = 16
    n_arr = np.empty(cap, np.int64)
    k_arr = np.empty(cap, np.int64)
    m = 0
    for i in range(cands.shape[0]):
        u = cands[i]
        k = partner[u]
        if (
            k >= 0
            and has_back[u]
            and eff_primary[k] == 1
            and color[k] == color[u]
        ):
            if m >= n_arr.shape[0]:
                n_arr = _grow(n_arr, m + 1)
                k_arr = _grow(k_arr, m + 1)
            n_arr[m] = u
            k_arr[m] = k
            m += 1
    return n_arr[:m], k_arr[:m], scanned


@_njit
def _ms_expand_loop(
    indptr,
    indices,
    frontier,
    frontier_bits,
    visited,
    color,
    wave_colors,
    wave_masks,
):
    # Sequential per-edge sweep: unlike the vectorized tiers, visited
    # is updated as edges are processed, so duplicate targets within a
    # level merge on the fly.  The per-node OR of wave bits is
    # order-insensitive, hence the final visited array (and the set of
    # newly-bitted nodes) matches the snapshot-based tiers; the wrapper
    # sorts/merges the output pairs to restore the sorted contract.
    cap = 64
    out_nodes = np.empty(cap, np.int64)
    out_bits = np.empty(cap, np.uint64)
    m = 0
    scanned = 0
    n_waves = wave_colors.shape[0]
    for i in range(frontier.shape[0]):
        f = frontier[i]
        fb = frontier_bits[i]
        scanned += indptr[f + 1] - indptr[f]
        for e in range(indptr[f], indptr[f + 1]):
            v = indices[e]
            cv = color[v]
            # binary search cv in wave_colors
            lo = 0
            hi = n_waves
            while lo < hi:
                mid = (lo + hi) // 2
                if wave_colors[mid] < cv:
                    lo = mid + 1
                else:
                    hi = mid
            if lo >= n_waves or wave_colors[lo] != cv:
                continue
            new_bits = fb & wave_masks[lo] & ~visited[v]
            if new_bits == np.uint64(0):
                continue
            visited[v] |= new_bits
            if m >= out_nodes.shape[0]:
                out_nodes = _grow(out_nodes, m + 1)
                out_bits = _grow(out_bits, m + 1)
            out_nodes[m] = v
            out_bits[m] = new_bits
            m += 1
    return out_nodes[:m], out_bits[:m], scanned


@_njit
def _ms_intersect_loop(nodes, bits, fw_visited, bw_visited):
    # Scalar form of the packed-uint64 classification; the tie-break is
    # the same lowest-set-bit rule: claim & (~claim + 1).
    m = nodes.shape[0]
    cat = np.empty(m, np.uint8)
    one = np.uint64(1)
    zero = np.uint64(0)
    for i in range(m):
        v = nodes[i]
        b = bits[i]
        f = fw_visited[v]
        w = bw_visited[v]
        claim = f & w
        if claim != zero:
            if (claim & (~claim + one)) == b:
                cat[i] = 0  # MS_SCC
            else:
                cat[i] = 4  # MS_CLAIMED
        elif (f & b) != zero:
            cat[i] = 1  # MS_FW_ONLY
        elif (w & b) != zero:
            cat[i] = 2  # MS_BW_ONLY
        else:
            cat[i] = 3  # MS_UNREACHED
    return cat


@_njit
def _dfs_collect_loop(indptr, indices, pivot, olds, news, color):
    n_trans = olds.shape[0]
    cap = 64
    out_nodes = np.empty(cap, np.int64)
    out_slots = np.empty(cap, np.int64)
    stack = np.empty(cap, np.int64)
    pc = color[pivot]
    slot = 0
    for t in range(n_trans):
        if olds[t] == pc:
            slot = t
            break
    color[pivot] = news[slot]
    out_nodes[0] = pivot
    out_slots[0] = slot
    m = 1
    stack[0] = pivot
    top = 1
    edges = 0
    while top > 0:
        top -= 1
        u = stack[top]
        edges += indptr[u + 1] - indptr[u]
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            cv = color[v]
            for t in range(n_trans):
                if olds[t] == cv:
                    color[v] = news[t]
                    if m >= out_nodes.shape[0]:
                        out_nodes = _grow(out_nodes, m + 1)
                        out_slots = _grow(out_slots, m + 1)
                    out_nodes[m] = v
                    out_slots[m] = t
                    m += 1
                    if top >= stack.shape[0]:
                        stack = _grow(stack, top + 1)
                    stack[top] = v
                    top += 1
                    break
    return out_nodes[:m], out_slots[:m], edges


# ---------------------------------------------------------------------------
# Python wrappers adapting the loops to the registry contracts.  These
# are what gets registered (only when numba is present — otherwise the
# fastpath implementations keep the slots and these remain reachable
# for interpreted-mode logic tests).
# ---------------------------------------------------------------------------


def expand_frontier(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    *,
    return_sources: bool = False,
    unique: bool = False,
) -> Tuple[np.ndarray, np.ndarray] | np.ndarray:
    from .reference import dedup_sorted

    if unique and return_sources:
        raise ValueError("unique=True cannot be combined with return_sources")
    frontier = np.asarray(frontier, dtype=np.int64)
    if frontier.size == 0:
        return (_EMPTY, _EMPTY) if return_sources else _EMPTY
    targets, sources = _expand_loop(indptr, indices, frontier, return_sources)
    if return_sources:
        return targets, sources
    if unique:
        return dedup_sorted(targets, indptr.shape[0] - 1)
    return targets


def delta_expand_frontier(
    indptr: np.ndarray,
    indices: np.ndarray,
    tomb: np.ndarray,
    add_indptr: np.ndarray,
    add_indices: np.ndarray,
    frontier: np.ndarray,
    *,
    return_sources: bool = False,
    unique: bool = False,
) -> Tuple[np.ndarray, np.ndarray] | np.ndarray:
    from .reference import dedup_sorted

    if unique and return_sources:
        raise ValueError("unique=True cannot be combined with return_sources")
    frontier = np.asarray(frontier, dtype=np.int64)
    if frontier.size == 0:
        return (_EMPTY, _EMPTY) if return_sources else _EMPTY
    targets, sources = _delta_expand_loop(
        indptr, indices, tomb, add_indptr, add_indices, frontier,
        return_sources,
    )
    if return_sources:
        return targets, sources
    if unique:
        return dedup_sorted(targets, indptr.shape[0] - 1)
    return targets


def _parts_by_slot(nodes: np.ndarray, slots: np.ndarray, news: np.ndarray):
    """Split per-slot hits into the per-transition sorted arrays,
    merging duplicate target colours like the reference does."""
    merged: dict[int, np.ndarray] = {}
    for t, nw in enumerate(news.tolist()):
        chunk = np.sort(nodes[slots == t])
        nw = int(nw)
        if nw in merged:
            merged[nw] = np.sort(np.concatenate([merged[nw], chunk]))
        else:
            merged[nw] = chunk
    return [merged[int(nw)] for nw in news.tolist()]


def bfs_level_transform(indptr, indices, frontier, color, olds, news):
    nodes, slots, scanned = _bfs_level_loop(
        indptr, indices, frontier, color, olds, news
    )
    return _parts_by_slot(nodes, slots, news), int(scanned)


def effective_degrees_arrays(
    indptr, indices, in_indptr, in_indices, nodes, color
):
    eff_out, eff_in, scanned = _effective_degrees_loop(
        indptr, indices, in_indptr, in_indices, nodes, color
    )
    return eff_out, eff_in, int(scanned)


def trim_decrement(indptr, indices, cand, old_colors, color, eff):
    hit, scanned = _trim_decrement_loop(
        indptr, indices, cand, old_colors, color, eff
    )
    return hit, int(scanned)


def wcc_hook_round(u, v, wcc, active, both, compress):
    _wcc_hook_loop(u, v, wcc, active, bool(both), bool(compress))


def trim2_pattern_pairs(
    nbr_ptr, nbr_idx, back_ptr, back_idx, cands, color, eff_primary
):
    if cands.size == 0:
        return _EMPTY, _EMPTY, 0
    n_arr, k_arr, scanned = _trim2_pattern_loop(
        nbr_ptr, nbr_idx, back_ptr, back_idx, cands, color, eff_primary
    )
    return n_arr, k_arr, int(scanned)


def dfs_collect_colored(indptr, indices, pivot, olds, news, color):
    nodes, slots, edges = _dfs_collect_loop(
        indptr, indices, int(pivot), olds, news, color
    )
    return _parts_by_slot(nodes, slots, news), int(edges)


def ms_expand_frontier(
    indptr, indices, frontier, frontier_bits, visited, color,
    wave_colors, wave_masks,
):
    frontier = np.asarray(frontier, dtype=np.int64)
    if frontier.size == 0:
        return _EMPTY, _EMPTY_U64, 0
    nodes, nbits, scanned = _ms_expand_loop(
        indptr, indices, frontier, frontier_bits, visited, color,
        wave_colors, wave_masks,
    )
    if nodes.size == 0:
        return _EMPTY, _EMPTY_U64, int(scanned)
    # The loop merges duplicate targets into ``visited`` on the fly but
    # may append the same node once per contributing source; restore
    # the sorted-unique output contract with one OR-fold.
    order = np.argsort(nodes, kind="stable")
    ns = nodes[order]
    bs = nbits[order]
    starts = np.flatnonzero(np.r_[True, ns[1:] != ns[:-1]])
    return ns[starts], np.bitwise_or.reduceat(bs, starts), int(scanned)


def ms_fwbw_intersect(nodes, bits, fw_visited, bw_visited):
    return _ms_intersect_loop(nodes, bits, fw_visited, bw_visited)


if HAS_NUMBA:  # pragma: no cover - exercised only with numba installed
    register("expand_frontier", "numba")(expand_frontier)
    register("delta_expand_frontier", "numba")(delta_expand_frontier)
    register("bfs_level_transform", "numba")(bfs_level_transform)
    register("effective_degrees", "numba")(effective_degrees_arrays)
    register("trim_decrement", "numba")(trim_decrement)
    register("wcc_hook_round", "numba")(wcc_hook_round)
    register("trim2_pattern_pairs", "numba")(trim2_pattern_pairs)
    register("dfs_collect_colored", "numba")(dfs_collect_colored)
    register("ms_expand_frontier", "numba")(ms_expand_frontier)
    register("ms_fwbw_intersect", "numba")(ms_fwbw_intersect)
