"""Tuned pure-NumPy kernels: the accelerated backend's no-numba tier.

When the ``numba`` backend is requested but numba is not importable,
these implementations take over the slots where vectorization genuinely
beats the reference (frontier-density-adaptive dedup, a
level-synchronous rewrite of the phase-2 DFS, repeat-based colour
matching in the Trim decrement).  Kernels with no better pure-NumPy
formulation — the WCC hook round, whose sequential ``minimum.at``
semantics are load-bearing for trace invariance, and the Trim2 pattern
match — simply keep the reference implementation via the registry's
per-kernel fallback rule.

Every function here is parity-tested against
:mod:`repro.kernels.reference`: identical sorted output arrays,
identical scanned-edge counts.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import reference
from .registry import register

__all__ = [
    "bfs_level_transform",
    "delta_expand_frontier",
    "trim_decrement",
    "dfs_collect_colored",
    "ms_expand_frontier",
    "ms_fwbw_intersect",
]

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY_U64 = np.empty(0, dtype=np.uint64)

#: below this many decremented entries ``np.subtract.at`` beats paying
#: for a length-n ``bincount`` allocation.
_BINCOUNT_CUTOFF = 1024


@register("bfs_level_transform", "numba")
def bfs_level_transform(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    color: np.ndarray,
    olds: np.ndarray,
    news: np.ndarray,
) -> Tuple[list, int]:
    """Reference semantics with dedup-before-gather.

    Dense BFS levels on small-world graphs produce target batches that
    are mostly duplicates.  Deduplicating *first* (density-adaptive:
    O(n + k) flag-array against the reference's O(k log k) sorts) means
    the colour gather, the per-transition compares and the extractions
    all run over at most ``n`` unique nodes instead of ``k`` raw
    adjacency entries.  The reference snapshots target colours before
    recolouring, so filtering the deduplicated set by colour yields
    exactly its sorted unique hit arrays.
    """
    num_nodes = indptr.shape[0] - 1
    targets = reference.expand_frontier(indptr, indices, frontier)
    scanned = int(targets.size)
    if scanned == 0:
        return [_EMPTY for _ in range(len(olds))], 0
    uniq = reference.dedup_sorted(targets, num_nodes)
    tc = color[uniq]
    hits = []
    for old, new in zip(olds, news):
        hit = uniq[tc == old]
        if hit.size:
            color[hit] = new
        else:
            hit = _EMPTY
        hits.append(hit)
    return hits, scanned


@register("trim_decrement", "numba")
def trim_decrement(
    indptr: np.ndarray,
    indices: np.ndarray,
    cand: np.ndarray,
    old_colors: np.ndarray,
    color: np.ndarray,
    eff: np.ndarray,
) -> Tuple[np.ndarray, int]:
    """Reference semantics, minus the per-edge binary search.

    The reference recovers each edge's source position with
    ``searchsorted`` (O(E log k)); repeating ``old_colors`` by the
    source degree pairs edges with their trimmed-node colour in O(E).
    Large decrement batches swap ``np.subtract.at`` (slow scalar
    scatter) for an equivalent ``bincount`` subtraction.
    """
    counts = reference.segment_counts(indptr, cand)
    targets = reference.expand_frontier(indptr, indices, cand)
    scanned = int(targets.size)
    if scanned == 0:
        return _EMPTY, 0
    valid = color[targets] == np.repeat(old_colors, counts)
    hit = targets[valid]
    if hit.size >= _BINCOUNT_CUTOFF:
        eff -= np.bincount(hit, minlength=eff.shape[0])
    else:
        np.subtract.at(eff, hit, 1)
    return hit, scanned


@register("dfs_collect_colored", "numba")
def dfs_collect_colored(
    indptr: np.ndarray,
    indices: np.ndarray,
    pivot: int,
    olds: np.ndarray,
    news: np.ndarray,
    color: np.ndarray,
) -> Tuple[list, int]:
    """Level-synchronous rewrite of the phase-2 colour-collecting DFS.

    A traversal's visited sets (and hence the sorted output contract,
    the per-new-colour partition, and the total adjacency entries
    scanned — each visited node is expanded exactly once) are
    independent of visit order, so the interpreted per-edge stack loop
    can be replaced wholesale by wide vectorized frontier expansions
    with adaptive dedup.  On 1M-edge partitions this is the difference
    between interpreter-bound and memory-bound.
    """
    num_nodes = indptr.shape[0] - 1
    trans = list(zip(olds.tolist(), news.tolist()))
    collected: dict[int, list] = {int(nw): [] for nw in news}
    pivot = int(pivot)
    new_pivot = dict(trans)[int(color[pivot])]
    color[pivot] = new_pivot
    pivot_arr = np.array([pivot], dtype=np.int64)
    collected[new_pivot].append(pivot_arr)
    frontier = pivot_arr
    edges = 0
    while frontier.size:
        targets = reference.expand_frontier(indptr, indices, frontier)
        edges += int(targets.size)
        if targets.size == 0:
            break
        tc = color[targets]
        next_parts = []
        for old, new in trans:
            hit = targets[tc == old]
            if hit.size == 0:
                continue
            hit = reference.dedup_sorted(hit, num_nodes)
            color[hit] = new
            collected[new].append(hit)
            next_parts.append(hit)
        if not next_parts:
            break
        frontier = np.concatenate(next_parts)
    parts = []
    seen: dict[int, np.ndarray] = {}
    for nw in news.tolist():
        nw = int(nw)
        if nw not in seen:
            chunks = collected[nw]
            seen[nw] = (
                np.sort(np.concatenate(chunks)) if chunks else _EMPTY
            )
        parts.append(seen[nw])
    return parts, edges


@register("ms_expand_frontier", "numba")
def ms_expand_frontier(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    frontier_bits: np.ndarray,
    visited: np.ndarray,
    color: np.ndarray,
    wave_colors: np.ndarray,
    wave_masks: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Reference semantics with a sort/``reduceat`` bit gather.

    The reference OR-reduces per-target bits with
    ``np.bitwise_or.at`` — a scalar scatter.  Sorting the surviving
    (target, bits) pairs once and folding runs with
    ``np.bitwise_or.reduceat`` keeps the whole sweep in vectorized
    NumPy; the per-target OR is order-insensitive, so the merged masks
    (and the sorted unique output) are bit-identical.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    if frontier.size == 0:
        return _EMPTY, _EMPTY_U64, 0
    counts = reference.segment_counts(indptr, frontier)
    targets = reference.expand_frontier(indptr, indices, frontier)
    scanned = int(targets.size)
    if scanned == 0:
        return _EMPTY, _EMPTY_U64, 0
    src_bits = np.repeat(frontier_bits, counts)
    tc = color[targets]
    pos = np.minimum(
        np.searchsorted(wave_colors, tc), wave_colors.size - 1
    )
    eligible = src_bits & wave_masks[pos]
    eligible[wave_colors[pos] != tc] = np.uint64(0)
    live = np.flatnonzero(eligible)
    if live.size == 0:
        return _EMPTY, _EMPTY_U64, scanned
    order = live[np.argsort(targets[live], kind="stable")]
    ts = targets[order]
    bs = eligible[order]
    boundary = np.empty(ts.size, dtype=bool)
    boundary[0] = True
    np.not_equal(ts[1:], ts[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    uniq = ts[starts]
    merged = np.bitwise_or.reduceat(bs, starts)
    gained = merged & ~visited[uniq]
    fresh = gained != 0
    nxt = uniq[fresh]
    nbits = gained[fresh]
    visited[nxt] |= nbits
    return nxt, nbits, scanned


@register("ms_fwbw_intersect", "numba")
def ms_fwbw_intersect(
    nodes: np.ndarray,
    bits: np.ndarray,
    fw_visited: np.ndarray,
    bw_visited: np.ndarray,
) -> np.ndarray:
    """Reference semantics with the branch masks fused.

    Same packed-``uint64`` bit algebra as the reference (including the
    lowest-set-bit tie-break ``claim & (~claim + 1)``); the only
    change is computing the direction tests once and combining them
    in place, which halves the temporaries on large batches.
    """
    f = fw_visited[nodes]
    w = bw_visited[nodes]
    claim = f & w
    f &= bits
    w &= bits
    cat = np.full(nodes.shape[0], reference.MS_UNREACHED, dtype=np.uint8)
    cat[f != 0] = reference.MS_FW_ONLY
    cat[(w != 0) & (f == 0)] = reference.MS_BW_ONLY
    claimed = claim != 0
    cat[claimed] = reference.MS_CLAIMED
    claim &= ~claim + np.uint64(1)  # lowest set bit
    cat[claimed & (claim == bits)] = reference.MS_SCC
    return cat


@register("delta_expand_frontier", "numba")
def delta_expand_frontier(
    indptr: np.ndarray,
    indices: np.ndarray,
    tomb: np.ndarray,
    add_indptr: np.ndarray,
    add_indices: np.ndarray,
    frontier: np.ndarray,
    *,
    return_sources: bool = False,
    unique: bool = False,
) -> Tuple[np.ndarray, np.ndarray] | np.ndarray:
    """Sort-free merged-view expansion (reference contract, scatter
    layout).

    The reference realizes the per-slot base-then-adds grouping with a
    stable argsort over slot keys; here the destination offset of every
    entry is computed directly — out-row pointers from the per-slot
    live/add counts, within-row ranks from cumulative sums — and the
    targets scattered into place, dropping the O(k log k) sort from
    every BFS level of the dynamic-SCC traversals.
    """
    if unique and return_sources:
        raise ValueError("unique=True cannot be combined with return_sources")
    frontier = np.asarray(frontier, dtype=np.int64)
    num_nodes = indptr.shape[0] - 1
    nf = frontier.shape[0]
    if nf == 0:
        return (_EMPTY, _EMPTY) if return_sources else _EMPTY
    counts_b = reference.segment_counts(indptr, frontier)
    counts_a = reference.segment_counts(add_indptr, frontier)
    total_b = int(counts_b.sum())
    total_a = int(counts_a.sum())
    if total_b:
        starts = indptr[frontier].astype(np.int64, copy=False)
        cum_b = np.cumsum(counts_b)
        idx = np.arange(total_b, dtype=np.int64) + np.repeat(
            starts - (cum_b - counts_b), counts_b
        )
        live = ~tomb[idx]
        live_per_slot = np.bincount(
            np.repeat(np.arange(nf, dtype=np.int64), counts_b)[live],
            minlength=nf,
        ).astype(np.int64)
    else:
        live = None
        live_per_slot = np.zeros(nf, dtype=np.int64)
    out_counts = live_per_slot + counts_a
    total = int(out_counts.sum())
    if total == 0:
        return (_EMPTY, _EMPTY) if return_sources else _EMPTY
    out_starts = np.concatenate(
        ([0], np.cumsum(out_counts, dtype=np.int64))
    )[:-1]
    targets = np.empty(total, dtype=np.int64)
    if total_b and live is not None and live.any():
        # rank of each surviving entry within its slot's live run
        live_before = np.concatenate(
            ([0], np.cumsum(live_per_slot, dtype=np.int64))
        )[:-1]
        rank = np.cumsum(live, dtype=np.int64) - 1 - np.repeat(
            live_before, counts_b
        )
        dest = np.repeat(out_starts, counts_b) + rank
        targets[dest[live]] = indices[idx][live]
    if total_a:
        cum_a = np.cumsum(counts_a)
        rank_a = np.arange(total_a, dtype=np.int64) - np.repeat(
            cum_a - counts_a, counts_a
        )
        dest_a = np.repeat(out_starts + live_per_slot, counts_a) + rank_a
        a_starts = add_indptr[frontier].astype(np.int64, copy=False)
        a_idx = np.arange(total_a, dtype=np.int64) + np.repeat(
            a_starts - (cum_a - counts_a), counts_a
        )
        targets[dest_a] = add_indices[a_idx]
    if return_sources:
        return targets, np.repeat(frontier, out_counts)
    if unique:
        return reference.dedup_sorted(targets, num_nodes)
    return targets
