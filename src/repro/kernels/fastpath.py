"""Tuned pure-NumPy kernels: the accelerated backend's no-numba tier.

When the ``numba`` backend is requested but numba is not importable,
these implementations take over the slots where vectorization genuinely
beats the reference (frontier-density-adaptive dedup, a
level-synchronous rewrite of the phase-2 DFS, repeat-based colour
matching in the Trim decrement).  Kernels with no better pure-NumPy
formulation — the WCC hook round, whose sequential ``minimum.at``
semantics are load-bearing for trace invariance, and the Trim2 pattern
match — simply keep the reference implementation via the registry's
per-kernel fallback rule.

Every function here is parity-tested against
:mod:`repro.kernels.reference`: identical sorted output arrays,
identical scanned-edge counts.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import reference
from .registry import register

__all__ = [
    "bfs_level_transform",
    "trim_decrement",
    "dfs_collect_colored",
    "ms_expand_frontier",
    "ms_fwbw_intersect",
]

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY_U64 = np.empty(0, dtype=np.uint64)

#: below this many decremented entries ``np.subtract.at`` beats paying
#: for a length-n ``bincount`` allocation.
_BINCOUNT_CUTOFF = 1024


@register("bfs_level_transform", "numba")
def bfs_level_transform(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    color: np.ndarray,
    olds: np.ndarray,
    news: np.ndarray,
) -> Tuple[list, int]:
    """Reference semantics with dedup-before-gather.

    Dense BFS levels on small-world graphs produce target batches that
    are mostly duplicates.  Deduplicating *first* (density-adaptive:
    O(n + k) flag-array against the reference's O(k log k) sorts) means
    the colour gather, the per-transition compares and the extractions
    all run over at most ``n`` unique nodes instead of ``k`` raw
    adjacency entries.  The reference snapshots target colours before
    recolouring, so filtering the deduplicated set by colour yields
    exactly its sorted unique hit arrays.
    """
    num_nodes = indptr.shape[0] - 1
    targets = reference.expand_frontier(indptr, indices, frontier)
    scanned = int(targets.size)
    if scanned == 0:
        return [_EMPTY for _ in range(len(olds))], 0
    uniq = reference.dedup_sorted(targets, num_nodes)
    tc = color[uniq]
    hits = []
    for old, new in zip(olds, news):
        hit = uniq[tc == old]
        if hit.size:
            color[hit] = new
        else:
            hit = _EMPTY
        hits.append(hit)
    return hits, scanned


@register("trim_decrement", "numba")
def trim_decrement(
    indptr: np.ndarray,
    indices: np.ndarray,
    cand: np.ndarray,
    old_colors: np.ndarray,
    color: np.ndarray,
    eff: np.ndarray,
) -> Tuple[np.ndarray, int]:
    """Reference semantics, minus the per-edge binary search.

    The reference recovers each edge's source position with
    ``searchsorted`` (O(E log k)); repeating ``old_colors`` by the
    source degree pairs edges with their trimmed-node colour in O(E).
    Large decrement batches swap ``np.subtract.at`` (slow scalar
    scatter) for an equivalent ``bincount`` subtraction.
    """
    counts = reference.segment_counts(indptr, cand)
    targets = reference.expand_frontier(indptr, indices, cand)
    scanned = int(targets.size)
    if scanned == 0:
        return _EMPTY, 0
    valid = color[targets] == np.repeat(old_colors, counts)
    hit = targets[valid]
    if hit.size >= _BINCOUNT_CUTOFF:
        eff -= np.bincount(hit, minlength=eff.shape[0])
    else:
        np.subtract.at(eff, hit, 1)
    return hit, scanned


@register("dfs_collect_colored", "numba")
def dfs_collect_colored(
    indptr: np.ndarray,
    indices: np.ndarray,
    pivot: int,
    olds: np.ndarray,
    news: np.ndarray,
    color: np.ndarray,
) -> Tuple[list, int]:
    """Level-synchronous rewrite of the phase-2 colour-collecting DFS.

    A traversal's visited sets (and hence the sorted output contract,
    the per-new-colour partition, and the total adjacency entries
    scanned — each visited node is expanded exactly once) are
    independent of visit order, so the interpreted per-edge stack loop
    can be replaced wholesale by wide vectorized frontier expansions
    with adaptive dedup.  On 1M-edge partitions this is the difference
    between interpreter-bound and memory-bound.
    """
    num_nodes = indptr.shape[0] - 1
    trans = list(zip(olds.tolist(), news.tolist()))
    collected: dict[int, list] = {int(nw): [] for nw in news}
    pivot = int(pivot)
    new_pivot = dict(trans)[int(color[pivot])]
    color[pivot] = new_pivot
    pivot_arr = np.array([pivot], dtype=np.int64)
    collected[new_pivot].append(pivot_arr)
    frontier = pivot_arr
    edges = 0
    while frontier.size:
        targets = reference.expand_frontier(indptr, indices, frontier)
        edges += int(targets.size)
        if targets.size == 0:
            break
        tc = color[targets]
        next_parts = []
        for old, new in trans:
            hit = targets[tc == old]
            if hit.size == 0:
                continue
            hit = reference.dedup_sorted(hit, num_nodes)
            color[hit] = new
            collected[new].append(hit)
            next_parts.append(hit)
        if not next_parts:
            break
        frontier = np.concatenate(next_parts)
    parts = []
    seen: dict[int, np.ndarray] = {}
    for nw in news.tolist():
        nw = int(nw)
        if nw not in seen:
            chunks = collected[nw]
            seen[nw] = (
                np.sort(np.concatenate(chunks)) if chunks else _EMPTY
            )
        parts.append(seen[nw])
    return parts, edges


@register("ms_expand_frontier", "numba")
def ms_expand_frontier(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    frontier_bits: np.ndarray,
    visited: np.ndarray,
    color: np.ndarray,
    wave_colors: np.ndarray,
    wave_masks: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Reference semantics with a sort/``reduceat`` bit gather.

    The reference OR-reduces per-target bits with
    ``np.bitwise_or.at`` — a scalar scatter.  Sorting the surviving
    (target, bits) pairs once and folding runs with
    ``np.bitwise_or.reduceat`` keeps the whole sweep in vectorized
    NumPy; the per-target OR is order-insensitive, so the merged masks
    (and the sorted unique output) are bit-identical.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    if frontier.size == 0:
        return _EMPTY, _EMPTY_U64, 0
    counts = reference.segment_counts(indptr, frontier)
    targets = reference.expand_frontier(indptr, indices, frontier)
    scanned = int(targets.size)
    if scanned == 0:
        return _EMPTY, _EMPTY_U64, 0
    src_bits = np.repeat(frontier_bits, counts)
    tc = color[targets]
    pos = np.minimum(
        np.searchsorted(wave_colors, tc), wave_colors.size - 1
    )
    eligible = src_bits & wave_masks[pos]
    eligible[wave_colors[pos] != tc] = np.uint64(0)
    live = np.flatnonzero(eligible)
    if live.size == 0:
        return _EMPTY, _EMPTY_U64, scanned
    order = live[np.argsort(targets[live], kind="stable")]
    ts = targets[order]
    bs = eligible[order]
    boundary = np.empty(ts.size, dtype=bool)
    boundary[0] = True
    np.not_equal(ts[1:], ts[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    uniq = ts[starts]
    merged = np.bitwise_or.reduceat(bs, starts)
    gained = merged & ~visited[uniq]
    fresh = gained != 0
    nxt = uniq[fresh]
    nbits = gained[fresh]
    visited[nxt] |= nbits
    return nxt, nbits, scanned


@register("ms_fwbw_intersect", "numba")
def ms_fwbw_intersect(
    nodes: np.ndarray,
    bits: np.ndarray,
    fw_visited: np.ndarray,
    bw_visited: np.ndarray,
) -> np.ndarray:
    """Reference semantics with the branch masks fused.

    Same packed-``uint64`` bit algebra as the reference (including the
    lowest-set-bit tie-break ``claim & (~claim + 1)``); the only
    change is computing the direction tests once and combining them
    in place, which halves the temporaries on large batches.
    """
    f = fw_visited[nodes]
    w = bw_visited[nodes]
    claim = f & w
    f &= bits
    w &= bits
    cat = np.full(nodes.shape[0], reference.MS_UNREACHED, dtype=np.uint8)
    cat[f != 0] = reference.MS_FW_ONLY
    cat[(w != 0) & (f == 0)] = reference.MS_BW_ONLY
    claimed = claim != 0
    cat[claimed] = reference.MS_CLAIMED
    claim &= ~claim + np.uint64(1)  # lowest set bit
    cat[claimed & (claim == bits)] = reference.MS_SCC
    return cat
