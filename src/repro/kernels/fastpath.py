"""Tuned pure-NumPy kernels: the accelerated backend's no-numba tier.

When the ``numba`` backend is requested but numba is not importable,
these implementations take over the slots where vectorization genuinely
beats the reference (frontier-density-adaptive dedup, a
level-synchronous rewrite of the phase-2 DFS, repeat-based colour
matching in the Trim decrement).  Kernels with no better pure-NumPy
formulation — the WCC hook round, whose sequential ``minimum.at``
semantics are load-bearing for trace invariance, and the Trim2 pattern
match — simply keep the reference implementation via the registry's
per-kernel fallback rule.

Every function here is parity-tested against
:mod:`repro.kernels.reference`: identical sorted output arrays,
identical scanned-edge counts.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import reference
from .registry import register

__all__ = [
    "bfs_level_transform",
    "trim_decrement",
    "dfs_collect_colored",
]

_EMPTY = np.empty(0, dtype=np.int64)

#: below this many decremented entries ``np.subtract.at`` beats paying
#: for a length-n ``bincount`` allocation.
_BINCOUNT_CUTOFF = 1024


@register("bfs_level_transform", "numba")
def bfs_level_transform(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    color: np.ndarray,
    olds: np.ndarray,
    news: np.ndarray,
) -> Tuple[list, int]:
    """Reference semantics with dedup-before-gather.

    Dense BFS levels on small-world graphs produce target batches that
    are mostly duplicates.  Deduplicating *first* (density-adaptive:
    O(n + k) flag-array against the reference's O(k log k) sorts) means
    the colour gather, the per-transition compares and the extractions
    all run over at most ``n`` unique nodes instead of ``k`` raw
    adjacency entries.  The reference snapshots target colours before
    recolouring, so filtering the deduplicated set by colour yields
    exactly its sorted unique hit arrays.
    """
    num_nodes = indptr.shape[0] - 1
    targets = reference.expand_frontier(indptr, indices, frontier)
    scanned = int(targets.size)
    if scanned == 0:
        return [_EMPTY for _ in range(len(olds))], 0
    uniq = reference.dedup_sorted(targets, num_nodes)
    tc = color[uniq]
    hits = []
    for old, new in zip(olds, news):
        hit = uniq[tc == old]
        if hit.size:
            color[hit] = new
        else:
            hit = _EMPTY
        hits.append(hit)
    return hits, scanned


@register("trim_decrement", "numba")
def trim_decrement(
    indptr: np.ndarray,
    indices: np.ndarray,
    cand: np.ndarray,
    old_colors: np.ndarray,
    color: np.ndarray,
    eff: np.ndarray,
) -> Tuple[np.ndarray, int]:
    """Reference semantics, minus the per-edge binary search.

    The reference recovers each edge's source position with
    ``searchsorted`` (O(E log k)); repeating ``old_colors`` by the
    source degree pairs edges with their trimmed-node colour in O(E).
    Large decrement batches swap ``np.subtract.at`` (slow scalar
    scatter) for an equivalent ``bincount`` subtraction.
    """
    counts = reference.segment_counts(indptr, cand)
    targets = reference.expand_frontier(indptr, indices, cand)
    scanned = int(targets.size)
    if scanned == 0:
        return _EMPTY, 0
    valid = color[targets] == np.repeat(old_colors, counts)
    hit = targets[valid]
    if hit.size >= _BINCOUNT_CUTOFF:
        eff -= np.bincount(hit, minlength=eff.shape[0])
    else:
        np.subtract.at(eff, hit, 1)
    return hit, scanned


@register("dfs_collect_colored", "numba")
def dfs_collect_colored(
    indptr: np.ndarray,
    indices: np.ndarray,
    pivot: int,
    olds: np.ndarray,
    news: np.ndarray,
    color: np.ndarray,
) -> Tuple[list, int]:
    """Level-synchronous rewrite of the phase-2 colour-collecting DFS.

    A traversal's visited sets (and hence the sorted output contract,
    the per-new-colour partition, and the total adjacency entries
    scanned — each visited node is expanded exactly once) are
    independent of visit order, so the interpreted per-edge stack loop
    can be replaced wholesale by wide vectorized frontier expansions
    with adaptive dedup.  On 1M-edge partitions this is the difference
    between interpreter-bound and memory-bound.
    """
    num_nodes = indptr.shape[0] - 1
    trans = list(zip(olds.tolist(), news.tolist()))
    collected: dict[int, list] = {int(nw): [] for nw in news}
    pivot = int(pivot)
    new_pivot = dict(trans)[int(color[pivot])]
    color[pivot] = new_pivot
    pivot_arr = np.array([pivot], dtype=np.int64)
    collected[new_pivot].append(pivot_arr)
    frontier = pivot_arr
    edges = 0
    while frontier.size:
        targets = reference.expand_frontier(indptr, indices, frontier)
        edges += int(targets.size)
        if targets.size == 0:
            break
        tc = color[targets]
        next_parts = []
        for old, new in trans:
            hit = targets[tc == old]
            if hit.size == 0:
                continue
            hit = reference.dedup_sorted(hit, num_nodes)
            color[hit] = new
            collected[new].append(hit)
            next_parts.append(hit)
        if not next_parts:
            break
        frontier = np.concatenate(next_parts)
    parts = []
    seen: dict[int, np.ndarray] = {}
    for nw in news.tolist():
        nw = int(nw)
        if nw not in seen:
            chunks = collected[nw]
            seen[nw] = (
                np.sort(np.concatenate(chunks)) if chunks else _EMPTY
            )
        parts.append(seen[nw])
    return parts, edges
