"""Pluggable kernel backend for the hot traversal/trim loops.

This package owns the six kernels where the reproduction spends its
wall-clock time — frontier expansion, the BFS colour-transform level
step, the effective-degree sweep, the incremental Trim decrement, the
WCC hook round, the Trim2 pattern match, and the phase-2
colour-collecting DFS — and dispatches each call to the active backend
(:mod:`repro.kernels.registry`): the ``numpy`` reference
implementations, or the accelerated ``numba`` backend (``@njit`` loops
when numba is importable, tuned pure-NumPy fallbacks when it is not).

Callers in :mod:`repro.traversal`, :mod:`repro.core` and
:mod:`repro.runtime` import the dispatch functions below; the choice
of backend is process-global (``REPRO_KERNELS`` env var, the CLI's
``--kernels`` flag, or :func:`set_backend`/:func:`use_backend`), and
the multiprocessing executors forward it into their workers so a
supervised run uses one backend end to end.

Backend invariant (enforced by the parity suite): identical outputs,
identical :class:`~repro.runtime.trace.WorkTrace` work quantities.
The simulated-scheduler figures must never depend on which backend
ran the kernels.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .registry import (
    BACKEND_CHOICES,
    available_backends,
    backend_info,
    get_backend,
    get_kernel,
    kernel_names,
    numba_available,
    register,
    resolve_backend,
    set_backend,
    use_backend,
)
from .reference import (
    MS_BW_ONLY,
    MS_CLAIMED,
    MS_FW_ONLY,
    MS_MAX_WAVES,
    MS_SCC,
    MS_UNREACHED,
    dedup_sorted,
    segment_counts,
)
from . import reference as _reference  # registers the numpy backend
from . import fastpath as _fastpath  # registers the no-numba fallbacks
from . import jit as _jit  # registers the @njit kernels when available

__all__ = [
    "BACKEND_CHOICES",
    "available_backends",
    "backend_info",
    "bfs_level_transform",
    "dedup_sorted",
    "delta_expand_frontier",
    "dfs_collect_colored",
    "effective_degrees_arrays",
    "expand_frontier",
    "get_backend",
    "get_kernel",
    "kernel_names",
    "MS_BW_ONLY",
    "MS_CLAIMED",
    "MS_FW_ONLY",
    "MS_MAX_WAVES",
    "MS_SCC",
    "MS_UNREACHED",
    "ms_expand_frontier",
    "ms_fwbw_intersect",
    "numba_available",
    "register",
    "resolve_backend",
    "segment_counts",
    "set_backend",
    "trim2_pattern_pairs",
    "trim_decrement",
    "use_backend",
    "wcc_hook_round",
]


def _transition_arrays(
    transitions: Dict[int, int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a colour-transition map and split it into arrays.

    A transition *value* may not also be a key: the backends are free
    to recolour sequentially (visit-time) or from a level snapshot, and
    the two only agree when no transition can re-trigger on a freshly
    written colour.  Every caller maps onto freshly allocated colours,
    so the restriction is free — but it is load-bearing for backend
    parity, hence checked here once for all backends.
    """
    olds = np.fromiter(transitions.keys(), dtype=np.int64, count=len(transitions))
    news = np.fromiter(transitions.values(), dtype=np.int64, count=len(transitions))
    if np.isin(news, olds).any():
        raise ValueError(
            f"transition targets may not also be transition sources: "
            f"{transitions}"
        )
    return olds, news


def expand_frontier(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    *,
    return_sources: bool = False,
    unique: bool = False,
):
    """Dispatching twin of :func:`repro.kernels.reference.expand_frontier`."""
    return get_kernel("expand_frontier")(
        indptr,
        indices,
        frontier,
        return_sources=return_sources,
        unique=unique,
    )


def delta_expand_frontier(
    indptr: np.ndarray,
    indices: np.ndarray,
    tomb: np.ndarray,
    add_indptr: np.ndarray,
    add_indices: np.ndarray,
    frontier: np.ndarray,
    *,
    return_sources: bool = False,
    unique: bool = False,
):
    """Merged-view (base CSR + delta log) frontier expansion.

    Dispatching twin of
    :func:`repro.kernels.reference.delta_expand_frontier`; the view
    argument quintuple comes from
    :meth:`repro.graph.delta.DeltaCSR.forward_view` /
    :meth:`~repro.graph.delta.DeltaCSR.backward_view`.
    """
    return get_kernel("delta_expand_frontier")(
        indptr,
        indices,
        tomb,
        add_indptr,
        add_indices,
        frontier,
        return_sources=return_sources,
        unique=unique,
    )


def bfs_level_transform(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    color: np.ndarray,
    transitions: Dict[int, int],
) -> Tuple[list, int]:
    """One colour-transforming BFS level (Algorithm 5's inner step).

    Returns ``(hits, scanned)``; ``hits`` is aligned with
    ``transitions`` iteration order, each entry the sorted unique array
    of nodes recoloured to that transition's target.
    """
    olds, news = _transition_arrays(transitions)
    return get_kernel("bfs_level_transform")(
        indptr, indices, frontier, color, olds, news
    )


def effective_degrees_arrays(
    indptr: np.ndarray,
    indices: np.ndarray,
    in_indptr: np.ndarray,
    in_indices: np.ndarray,
    nodes: np.ndarray,
    color: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Colour-restricted (out, in) degree sweep (Par-Trim's big region)."""
    return get_kernel("effective_degrees")(
        indptr, indices, in_indptr, in_indices, nodes, color
    )


def trim_decrement(
    indptr: np.ndarray,
    indices: np.ndarray,
    cand: np.ndarray,
    old_colors: np.ndarray,
    color: np.ndarray,
    eff: np.ndarray,
) -> Tuple[np.ndarray, int]:
    """Incremental Par-Trim neighbour-counter decrement (one direction)."""
    return get_kernel("trim_decrement")(
        indptr, indices, cand, old_colors, color, eff
    )


def wcc_hook_round(
    u: np.ndarray,
    v: np.ndarray,
    wcc: np.ndarray,
    active: np.ndarray,
    both: bool,
    compress: bool,
) -> None:
    """One Par-WCC hook(+compress) iteration; mutates ``wcc``."""
    get_kernel("wcc_hook_round")(u, v, wcc, active, both, compress)


def trim2_pattern_pairs(
    nbr_ptr: np.ndarray,
    nbr_idx: np.ndarray,
    back_ptr: np.ndarray,
    back_idx: np.ndarray,
    cands: np.ndarray,
    color: np.ndarray,
    eff_primary: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Par-Trim2's Figure 4 neighbour-pattern match."""
    return get_kernel("trim2_pattern_pairs")(
        nbr_ptr, nbr_idx, back_ptr, back_idx, cands, color, eff_primary
    )


def _validate_waves(
    wave_colors: np.ndarray, wave_masks: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    wave_colors = np.asarray(wave_colors, dtype=np.int64)
    wave_masks = np.asarray(wave_masks, dtype=np.uint64)
    if wave_colors.size == 0:
        raise ValueError("multi-source sweep needs at least one wave")
    if wave_colors.shape != wave_masks.shape:
        raise ValueError(
            f"wave_colors {wave_colors.shape} and wave_masks "
            f"{wave_masks.shape} must be aligned"
        )
    if wave_colors.size > MS_MAX_WAVES:
        raise ValueError(
            f"at most {MS_MAX_WAVES} waves per sweep "
            f"(got {wave_colors.size})"
        )
    if wave_colors.size > 1 and not (np.diff(wave_colors) > 0).all():
        raise ValueError("wave_colors must be strictly increasing")
    return wave_colors, wave_masks


def ms_expand_frontier(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    frontier_bits: np.ndarray,
    visited: np.ndarray,
    color: np.ndarray,
    wave_colors: np.ndarray,
    wave_masks: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """One multi-source BFS level over packed ``uint64`` wave bits.

    Advances up to :data:`MS_MAX_WAVES` colour-constrained BFS waves in
    a single CSR sweep; mutates ``visited`` in place and returns
    ``(next_nodes, next_bits, scanned)`` — the sorted unique nodes that
    gained at least one wave bit, their freshly gained bits, and the
    adjacency entries scanned.  See
    :func:`repro.kernels.reference.ms_expand_frontier` for the
    normative contract.
    """
    wave_colors, wave_masks = _validate_waves(wave_colors, wave_masks)
    frontier = np.asarray(frontier, dtype=np.int64)
    frontier_bits = np.asarray(frontier_bits, dtype=np.uint64)
    if visited.dtype != np.uint64:
        raise ValueError(f"visited must be uint64, got {visited.dtype}")
    return get_kernel("ms_expand_frontier")(
        indptr,
        indices,
        frontier,
        frontier_bits,
        visited,
        color,
        wave_colors,
        wave_masks,
    )


def ms_fwbw_intersect(
    nodes: np.ndarray,
    bits: np.ndarray,
    fw_visited: np.ndarray,
    bw_visited: np.ndarray,
) -> np.ndarray:
    """Classify candidate nodes after a multi-source FW/BW fixpoint.

    Returns a ``uint8`` category per node — :data:`MS_SCC`,
    :data:`MS_FW_ONLY`, :data:`MS_BW_ONLY`, :data:`MS_UNREACHED`, or
    :data:`MS_CLAIMED` (node is in some wave's FW∧BW intersection but
    the lowest claiming wave is not the node's own — the deterministic
    tie-break).  See
    :func:`repro.kernels.reference.ms_fwbw_intersect`.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    bits = np.asarray(bits, dtype=np.uint64)
    return get_kernel("ms_fwbw_intersect")(
        nodes, bits, fw_visited, bw_visited
    )


def dfs_collect_colored(
    indptr: np.ndarray,
    indices: np.ndarray,
    pivot: int,
    transitions: Dict[int, int],
    color: np.ndarray,
) -> Tuple[Dict[int, np.ndarray], int]:
    """Phase-2 colour-collecting traversal from ``pivot``.

    Returns ``(collected, edges_scanned)`` where ``collected[new]`` is
    the **sorted** array of nodes recoloured to ``new``.  (Until the
    kernel layer, this returned visit-ordered lists; the sorted
    contract is what lets level-synchronous and compiled traversals
    substitute for the interpreted stack DFS bit-for-bit — see
    :func:`repro.kernels.reference.dfs_collect_colored`.)
    """
    pivot_color = int(color[pivot])
    if pivot_color not in transitions:
        raise ValueError(
            f"pivot colour {pivot_color} not in transition map {transitions}"
        )
    olds, news = _transition_arrays(transitions)
    parts, edges = get_kernel("dfs_collect_colored")(
        indptr, indices, int(pivot), olds, news, color
    )
    return {int(nw): part for nw, part in zip(news, parts)}, edges
