"""Kernel backend registry: one dispatch point for the hot loops.

The six hot kernels of the reproduction (frontier expansion, the BFS
colour-transform level step, the effective-degree sweep, the Trim
decrement, the WCC hook round, the Trim2 pattern match, and the
phase-2 colour-collecting DFS) each exist in up to three
implementations:

``numpy``
    The reference implementations (:mod:`repro.kernels.reference`) —
    plain vectorized NumPy, byte-for-byte the semantics the rest of
    the library was validated against.
``numba``
    The accelerated backend.  With numba installed every kernel is a
    ``@njit``-compiled tight loop (:mod:`repro.kernels.jit`); without
    numba each kernel *individually* degrades to the best available
    pure-NumPy implementation (:mod:`repro.kernels.fastpath`, falling
    back to the reference where no better vectorization exists).  The
    backend is therefore always usable — ``numba`` names the request,
    not a hard dependency.
``auto``
    Resolve to the accelerated backend (the default).

Selection, in priority order:

1. an explicit :func:`set_backend` / :func:`use_backend` call
   (the CLI ``--kernels`` flag goes through this);
2. the ``REPRO_KERNELS`` environment variable;
3. ``auto``.

Contract for every registered implementation (DESIGN.md §8): given the
same inputs it must produce the same *sets* and the same sorted output
arrays as the reference, and any quantity that feeds the
:class:`~repro.runtime.trace.WorkTrace` (edges scanned, nodes visited,
iteration counts) must be identical — the simulated-scheduler figures
may never depend on which backend computed them.
"""

from __future__ import annotations

import contextlib
import os
import warnings
from typing import Callable, Dict, Iterator, Optional

__all__ = [
    "BACKEND_CHOICES",
    "available_backends",
    "backend_info",
    "get_backend",
    "get_kernel",
    "kernel_names",
    "numba_available",
    "register",
    "resolve_backend",
    "set_backend",
    "use_backend",
]

#: what ``--kernels`` / ``REPRO_KERNELS`` / :func:`set_backend` accept.
BACKEND_CHOICES = ("numpy", "numba", "auto")

#: environment variable consulted when no explicit request was made.
ENV_VAR = "REPRO_KERNELS"

# kernel name -> backend name -> implementation
_REGISTRY: Dict[str, Dict[str, Callable]] = {}

# explicit request (set_backend / use_backend); None defers to the env.
_override: Optional[str] = None

_numba_available: Optional[bool] = None
_warned_missing_numba = False


def numba_available() -> bool:
    """True when numba imports cleanly (cached after the first probe)."""
    global _numba_available
    if _numba_available is None:
        try:  # pragma: no cover - depends on the environment
            import numba  # noqa: F401

            _numba_available = True
        except Exception:
            _numba_available = False
    return _numba_available


def register(name: str, backend: str) -> Callable[[Callable], Callable]:
    """Decorator: register ``fn`` as ``name``'s ``backend`` implementation.

    Registering the same (name, backend) slot again *replaces* the
    previous implementation — :mod:`repro.kernels.jit` uses this to
    upgrade the ``numba`` slot from the fastpath fallback to the
    compiled kernel when numba is importable.
    """
    if backend not in ("numpy", "numba"):
        raise ValueError(
            f"implementations register under 'numpy' or 'numba', "
            f"not {backend!r}"
        )

    def deco(fn: Callable) -> Callable:
        _REGISTRY.setdefault(name, {})[backend] = fn
        return fn

    return deco


def resolve_backend(request: Optional[str] = None) -> str:
    """Map a request to the concrete backend ('numpy' or 'numba').

    ``None`` consults the override set by :func:`set_backend`, then
    ``$REPRO_KERNELS``, then defaults to ``auto``.  ``auto`` resolves
    to the accelerated backend (it is always available: without numba
    it runs the per-kernel NumPy fallbacks).  Requesting ``numba``
    without numba installed warns once and proceeds on the fallbacks.
    """
    global _warned_missing_numba
    if request is None:
        request = _override or os.environ.get(ENV_VAR) or "auto"
    if request not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown kernel backend {request!r}; "
            f"choose from {BACKEND_CHOICES}"
        )
    if request == "auto":
        return "numba"
    if request == "numba" and not numba_available():
        if not _warned_missing_numba:
            _warned_missing_numba = True
            warnings.warn(
                "kernel backend 'numba' requested but numba is not "
                "installed; running the pure-NumPy fallback "
                "implementations (install the [perf] extra for JIT)",
                RuntimeWarning,
                stacklevel=2,
            )
    return request


def set_backend(request: Optional[str]) -> None:
    """Pin the backend request for the process (None clears the pin)."""
    global _override
    if request is not None and request not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown kernel backend {request!r}; "
            f"choose from {BACKEND_CHOICES}"
        )
    _override = request


def get_backend() -> str:
    """The concrete backend ('numpy' or 'numba') calls dispatch to now."""
    return resolve_backend()


@contextlib.contextmanager
def use_backend(request: str) -> Iterator[None]:
    """Temporarily pin the backend (parity tests and benchmarks)."""
    global _override
    previous = _override
    set_backend(request)
    try:
        yield
    finally:
        _override = previous


def get_kernel(name: str, backend: Optional[str] = None) -> Callable:
    """The implementation of kernel ``name`` for the active backend.

    Falls back to the ``numpy`` reference when the resolved backend
    has no registration for this kernel (the per-kernel fallback rule).
    """
    try:
        impls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    resolved = resolve_backend(backend)
    impl = impls.get(resolved)
    if impl is None:
        impl = impls["numpy"]
    return impl


def kernel_names() -> tuple[str, ...]:
    """All registered kernel names (sorted)."""
    return tuple(sorted(_REGISTRY))


def available_backends(name: str) -> tuple[str, ...]:
    """Backends with a registered implementation for kernel ``name``."""
    return tuple(sorted(_REGISTRY.get(name, ())))


def backend_info() -> Dict[str, object]:
    """Machine-readable dispatch state (benchmarks embed this).

    ``resolved`` names what actually runs: ``"numba"`` only when the
    JIT kernels are importable, ``"fastpath"`` when the accelerated
    slot is active but numba is absent (the tuned pure-NumPy
    fallbacks), ``"numpy"`` for the reference tier.  A report of
    ``"numba"`` alongside ``numba_available: false`` was a bug —
    ``auto`` must never claim a backend that cannot be imported.
    """
    requested = _override or os.environ.get(ENV_VAR) or "auto"
    slot = resolve_backend()
    jit_active = slot == "numba" and numba_available()
    if slot == "numba" and not jit_active:
        resolved = "fastpath"
    else:
        resolved = slot
    return {
        "requested": requested,
        "resolved": resolved,
        "numba_available": numba_available(),
        "jit_active": jit_active,
        "kernels": {
            name: available_backends(name) for name in kernel_names()
        },
    }
