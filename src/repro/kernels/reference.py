"""Reference (pure NumPy) implementations of the hot kernels.

These carry the library's canonical semantics: every other backend is
parity-tested against them (bit-identical outputs, identical trace
work quantities).  They are also the ``numpy`` backend users can pin
with ``--kernels numpy`` to take JIT compilation out of the picture
when debugging.

Kernel signatures are deliberately *array-level* — raw CSR arrays in,
arrays out, no :class:`~repro.core.state.SCCState` or graph objects —
so the same contracts can be implemented by ``@njit`` loops
(:mod:`repro.kernels.jit`) without object-mode escapes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .registry import register

__all__ = [
    "segment_counts",
    "dedup_sorted",
    "expand_frontier",
    "delta_expand_frontier",
    "bfs_level_transform",
    "effective_degrees_arrays",
    "trim_decrement",
    "wcc_hook_round",
    "trim2_pattern_pairs",
    "dfs_collect_colored",
    "ms_expand_frontier",
    "ms_fwbw_intersect",
    "MS_MAX_WAVES",
    "MS_SCC",
    "MS_FW_ONLY",
    "MS_BW_ONLY",
    "MS_UNREACHED",
    "MS_CLAIMED",
]

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY_U64 = np.empty(0, dtype=np.uint64)

#: one ``uint64`` mask per node bounds the batch width.
MS_MAX_WAVES = 64

#: :func:`ms_fwbw_intersect` categories.  ``MS_SCC`` — the queried wave
#: claims the node as an SCC member (lowest claiming wave wins the
#: tie-break); ``MS_CLAIMED`` — some *other* wave claims it;
#: ``MS_FW_ONLY`` / ``MS_BW_ONLY`` — reached in exactly one direction
#: by the queried wave; ``MS_UNREACHED`` — untouched by it.
MS_SCC = 0
MS_FW_ONLY = 1
MS_BW_ONLY = 2
MS_UNREACHED = 3
MS_CLAIMED = 4

#: frontier-density threshold for the adaptive dedup: with more than
#: ``n / DEDUP_DENSITY_DIVISOR`` candidate entries the O(n) bitmap
#: beats the O(k log k) sort that ``np.unique`` performs.
DEDUP_DENSITY_DIVISOR = 8


def segment_counts(indptr: np.ndarray, frontier: np.ndarray) -> np.ndarray:
    """Per-frontier-node adjacency counts, always int64.

    The promotion matters: with an int32 CSR the difference inherits
    int32, and the ``cumsum`` over it (and the total-size arithmetic)
    can silently overflow once a frontier covers more than 2^31
    adjacency entries.  All downstream index arithmetic therefore goes
    through this helper.
    """
    counts = indptr[frontier + np.int64(1)] - indptr[frontier]
    return counts.astype(np.int64, copy=False)


def dedup_sorted(values: np.ndarray, num_nodes: int) -> np.ndarray:
    """Sorted unique node ids, choosing the representation by density.

    Sparse batches sort (``np.unique``); dense batches — more than
    1/8th of the node count — set flags in a bitmap and read them back
    with ``flatnonzero``, which is O(n + k) instead of O(k log k) and
    stops dense BFS levels from re-sorting mostly-duplicate targets.
    Both paths return the identical sorted-unique array.
    """
    k = values.size
    if k == 0:
        return _EMPTY
    if k > num_nodes // DEDUP_DENSITY_DIVISOR:
        flags = np.zeros(num_nodes, dtype=bool)
        flags[values] = True
        return np.flatnonzero(flags)
    return np.unique(values)


def _is_contiguous_range(frontier: np.ndarray) -> bool:
    """True when ``frontier`` is ``arange(f0, f0 + len)`` (sorted, dense)."""
    if frontier.size <= 1:
        return frontier.size == 1
    if int(frontier[-1]) - int(frontier[0]) + 1 != frontier.size:
        return False
    return bool((np.diff(frontier) == 1).all())


@register("expand_frontier", "numpy")
def expand_frontier(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    *,
    return_sources: bool = False,
    unique: bool = False,
) -> Tuple[np.ndarray, np.ndarray] | np.ndarray:
    """Gather the concatenated adjacency lists of ``frontier`` nodes.

    Returns the targets array; with ``return_sources=True`` also
    returns a parallel array repeating each frontier node once per
    out-edge (needed by degree-counting kernels).  With ``unique=True``
    the targets are deduplicated and sorted (density-adaptive), saving
    callers their own ``np.unique`` pass; it cannot be combined with
    ``return_sources`` (dedup would break the pairing).

    When the frontier is a contiguous ascending range — the whole-graph
    sweeps of Trim and WCC always are — the gather collapses to one
    slice of ``indices``, skipping the global ``arange`` ragged-gather
    entirely.
    """
    if unique and return_sources:
        raise ValueError("unique=True cannot be combined with return_sources")
    frontier = np.asarray(frontier, dtype=np.int64)
    num_nodes = indptr.shape[0] - 1
    if frontier.size == 0:
        return (_EMPTY, _EMPTY) if return_sources else _EMPTY
    counts = segment_counts(indptr, frontier)
    total = int(counts.sum())
    if total == 0:
        return (_EMPTY, _EMPTY) if return_sources else _EMPTY
    if _is_contiguous_range(frontier):
        lo = int(indptr[frontier[0]])
        targets = indices[lo : lo + total].astype(np.int64, copy=True)
    else:
        starts = indptr[frontier].astype(np.int64, copy=False)
        cum = np.cumsum(counts)
        # position j of output sits in segment k with offset
        # j - (cum[k] - counts[k])
        idx = np.arange(total, dtype=np.int64) + np.repeat(
            starts - (cum - counts), counts
        )
        targets = indices[idx].astype(np.int64, copy=False)
    if return_sources:
        return targets, np.repeat(frontier, counts)
    if unique:
        return dedup_sorted(targets, num_nodes)
    return targets


@register("bfs_level_transform", "numpy")
def bfs_level_transform(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    color: np.ndarray,
    olds: np.ndarray,
    news: np.ndarray,
) -> Tuple[list, int]:
    """One level of the Algorithm 5 colour-transforming traversal.

    Expands ``frontier``, and for each transition ``olds[i] ->
    news[i]`` recolours the targets whose colour is ``olds[i]``.
    Returns ``(hits, scanned)`` where ``hits[i]`` is the sorted unique
    array of nodes recoloured to ``news[i]`` (empty arrays for misses)
    and ``scanned`` the adjacency entries inspected.

    Contract: ``news`` values must not appear in ``olds`` (the callers
    always map onto freshly allocated colours), which makes
    snapshot-style and sequential recolouring equivalent.
    """
    targets = expand_frontier(indptr, indices, frontier)
    scanned = int(targets.size)
    hits = []
    if scanned == 0:
        return [_EMPTY for _ in range(len(olds))], 0
    tc = color[targets]
    for old, new in zip(olds, news):
        hit = targets[tc == old]
        if hit.size:
            hit = np.unique(hit)
            color[hit] = new
        else:
            hit = _EMPTY
        hits.append(hit)
    return hits, scanned


@register("effective_degrees", "numpy")
def effective_degrees_arrays(
    indptr: np.ndarray,
    indices: np.ndarray,
    in_indptr: np.ndarray,
    in_indices: np.ndarray,
    nodes: np.ndarray,
    color: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Colour-restricted (out, in) degrees of ``nodes``.

    Counts only neighbours with the same colour; by the DONE_COLOR
    invariant (state.py) that also excludes detached nodes.  Returns
    dense arrays (valid only at ``nodes``) plus the number of adjacency
    entries scanned (for work accounting).
    """
    n = indptr.shape[0] - 1
    eff_out = np.zeros(n, dtype=np.int64)
    eff_in = np.zeros(n, dtype=np.int64)
    scanned = 0
    for ptr, idx, eff in (
        (indptr, indices, eff_out),
        (in_indptr, in_indices, eff_in),
    ):
        targets, sources = expand_frontier(
            ptr, idx, nodes, return_sources=True
        )
        scanned += int(targets.size)
        if targets.size:
            valid = color[targets] == color[sources]
            counts = np.bincount(sources[valid], minlength=n)
            eff += counts
    return eff_out, eff_in, scanned


@register("trim_decrement", "numpy")
def trim_decrement(
    indptr: np.ndarray,
    indices: np.ndarray,
    cand: np.ndarray,
    old_colors: np.ndarray,
    color: np.ndarray,
    eff: np.ndarray,
) -> Tuple[np.ndarray, int]:
    """Decrement neighbour degree counters for trimmed nodes ``cand``.

    ``cand`` must be sorted ascending; ``old_colors[i]`` is the colour
    ``cand[i]`` carried before it was detached.  An edge counts iff the
    neighbour still carries that colour (marked neighbours carry
    DONE_COLOR).  Decrements ``eff`` in place; returns ``(hit,
    scanned)`` where ``hit`` lists the decremented neighbours (with
    duplicates, in expansion order) for the caller's touched-set union.
    """
    targets, sources = expand_frontier(
        indptr, indices, cand, return_sources=True
    )
    scanned = int(targets.size)
    if scanned == 0:
        return _EMPTY, 0
    src_pos = np.searchsorted(cand, sources)
    valid = color[targets] == old_colors[src_pos]
    hit = targets[valid]
    np.subtract.at(eff, hit, 1)
    return hit, scanned


@register("wcc_hook_round", "numpy")
def wcc_hook_round(
    u: np.ndarray,
    v: np.ndarray,
    wcc: np.ndarray,
    active: np.ndarray,
    both: bool,
    compress: bool,
) -> None:
    """One Par-WCC iteration: hook (min-label pull) + optional compress.

    Mutates ``wcc`` in place.  Semantics are load-bearing for trace
    invariance: ``np.minimum.at(wcc, u, wcc[v])`` gathers ``wcc[v]`` as
    a *snapshot* before accumulating (each pull pass sees labels from
    the start of that pass, never labels it just wrote), and the
    compress round is likewise snapshot gather-then-scatter
    (``wcc[active] = wcc[wcc[active]]``).  A backend that propagates
    labels *within* a pass converges in fewer rounds — and changes the
    iteration count, and with it the recorded trace.
    """
    np.minimum.at(wcc, u, wcc[v])
    if both:
        np.minimum.at(wcc, v, wcc[u])
    if compress:
        wcc[active] = wcc[wcc[active]]


@register("trim2_pattern_pairs", "numpy")
def trim2_pattern_pairs(
    nbr_ptr: np.ndarray,
    nbr_idx: np.ndarray,
    back_ptr: np.ndarray,
    back_idx: np.ndarray,
    cands: np.ndarray,
    color: np.ndarray,
    eff_primary: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Figure 4 pattern match: find (n, k) size-2 SCC pairs.

    ``cands`` are the nodes whose effective degree (in the pattern's
    primary direction, whose adjacency is ``nbr_ptr``/``nbr_idx``) is
    exactly 1; ``back_ptr``/``back_idx`` is the opposite direction used
    for the ``n -> k`` closure check.  Returns ``(n_array, k_array,
    edges_scanned)``.
    """
    n_total = nbr_ptr.shape[0] - 1
    if cands.size == 0:
        return _EMPTY, _EMPTY, 0
    scanned = 0
    # The unique colour-valid neighbour of each candidate.
    targets, sources = expand_frontier(
        nbr_ptr, nbr_idx, cands, return_sources=True
    )
    scanned += int(targets.size)
    valid = color[targets] == color[sources]
    partner = np.full(n_total, -1, dtype=np.int64)
    partner[sources[valid]] = targets[valid]  # exactly one write per cand
    k_of = partner[cands]

    # Closure: does the back edge (n -> k for in-pattern) exist?
    back_t, back_s = expand_frontier(
        back_ptr, back_idx, cands, return_sources=True
    )
    scanned += int(back_t.size)
    has_back = np.zeros(n_total, dtype=bool)
    if back_t.size:
        match = back_t == partner[back_s]
        has_back[back_s[match]] = True

    ok = (
        (k_of >= 0)
        & has_back[cands]
        & (eff_primary[k_of] == 1)
        & (color[k_of] == color[cands])
    )
    return cands[ok], k_of[ok], scanned


@register("dfs_collect_colored", "numpy")
def dfs_collect_colored(
    indptr: np.ndarray,
    indices: np.ndarray,
    pivot: int,
    olds: np.ndarray,
    news: np.ndarray,
    color: np.ndarray,
) -> Tuple[list, int]:
    """Sequential DFS twin of the colour-transforming BFS (phase 2).

    Visits nodes whose colour appears in ``olds``, recolours them to
    the paired ``news`` entry, continues through them, prunes
    elsewhere.  Returns ``(parts, edges_scanned)`` where ``parts[i]``
    is the **sorted** array of nodes recoloured to ``news[i]``.

    The sorted-output contract (rather than visit order) is what makes
    the backends interchangeable: a traversal's visited sets are
    independent of visit order, so every implementation — this
    interpreted stack DFS, the vectorized level-synchronous fallback,
    the compiled stack DFS — lands on identical arrays, and phase-2
    pivot selection (which indexes into these arrays) stays
    bit-reproducible across backends.

    The pivot is assumed pre-validated by the dispatcher (its colour is
    ``olds``' first entry's partition — see
    :func:`repro.kernels.dfs_collect_colored`).
    """
    trans = {int(o): int(nw) for o, nw in zip(olds, news)}
    collected: dict[int, list[int]] = {int(nw): [] for nw in news}
    pivot = int(pivot)
    new_pivot = trans[int(color[pivot])]
    color[pivot] = new_pivot
    collected[new_pivot].append(pivot)
    stack = [pivot]
    edges = 0
    while stack:
        u = stack.pop()
        row = indices[indptr[u] : indptr[u + 1]]
        edges += int(row.shape[0])
        for v in row:
            cv = int(color[v])
            if cv in trans:
                nv = trans[cv]
                color[v] = nv
                collected[nv].append(int(v))
                stack.append(int(v))
    parts = [
        np.sort(np.asarray(collected[int(nw)], dtype=np.int64))
        if collected[int(nw)]
        else _EMPTY
        for nw in news
    ]
    return parts, edges


@register("ms_expand_frontier", "numpy")
def ms_expand_frontier(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    frontier_bits: np.ndarray,
    visited: np.ndarray,
    color: np.ndarray,
    wave_colors: np.ndarray,
    wave_masks: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """One CSR sweep advancing up to 64 bit-packed BFS waves.

    ``frontier``/``frontier_bits`` carry, per frontier node, the
    ``uint64`` mask of waves standing on it; ``visited`` is the dense
    per-node wave-membership mask, updated **in place**.  A target
    ``v`` reached from a frontier node carrying wave ``j`` joins wave
    ``j`` iff ``color[v]`` equals wave ``j``'s partition colour —
    ``wave_colors`` (sorted ascending, distinct) paired with
    ``wave_masks`` (the OR of the bits of every wave owning that
    colour) encode that eligibility — and ``v`` does not already carry
    bit ``j``.

    Returns ``(next_frontier, next_bits, scanned)``: the sorted unique
    nodes that gained at least one bit this sweep, the bits each
    gained, and the adjacency entries inspected.  Newly gained bits
    are computed against ``visited`` as of sweep entry (snapshot
    semantics), so the result is independent of expansion order.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    if frontier.size == 0:
        return _EMPTY, _EMPTY_U64, 0
    counts = segment_counts(indptr, frontier)
    targets = expand_frontier(indptr, indices, frontier)
    scanned = int(targets.size)
    if scanned == 0:
        return _EMPTY, _EMPTY_U64, 0
    src_bits = np.repeat(frontier_bits, counts)
    tc = color[targets]
    pos = np.minimum(
        np.searchsorted(wave_colors, tc), wave_colors.size - 1
    )
    eligible = np.where(
        wave_colors[pos] == tc,
        src_bits & wave_masks[pos],
        np.uint64(0),
    )
    live = eligible != 0
    t = targets[live]
    b = eligible[live]
    if t.size == 0:
        return _EMPTY, _EMPTY_U64, scanned
    uniq = np.unique(t)
    acc = np.zeros(uniq.size, dtype=np.uint64)
    np.bitwise_or.at(acc, np.searchsorted(uniq, t), b)
    gained = acc & ~visited[uniq]
    fresh = gained != 0
    nxt = uniq[fresh]
    nbits = gained[fresh]
    visited[nxt] |= nbits
    return nxt, nbits, scanned


@register("ms_fwbw_intersect", "numpy")
def ms_fwbw_intersect(
    nodes: np.ndarray,
    bits: np.ndarray,
    fw_visited: np.ndarray,
    bw_visited: np.ndarray,
) -> np.ndarray:
    """Classify ``nodes`` against the FW/BW wave-membership masks.

    ``bits[i]`` is the single wave bit on whose behalf ``nodes[i]`` is
    queried.  A node lying in ``fw & bw`` of *any* wave belongs to
    some pivot's SCC; the deterministic tie-break awards it to the
    **lowest-indexed** claiming wave (the least significant set bit of
    ``fw & bw``), so the category is :data:`MS_SCC` when that wave is
    the querying one and :data:`MS_CLAIMED` otherwise — regardless of
    what the querying wave itself reached, because the node will be
    detached by its claimant.  Unclaimed nodes fall into
    :data:`MS_FW_ONLY` / :data:`MS_BW_ONLY` / :data:`MS_UNREACHED`
    relative to the querying wave's bit.
    """
    f = fw_visited[nodes]
    w = bw_visited[nodes]
    claim = f & w
    cat = np.full(nodes.shape[0], MS_UNREACHED, dtype=np.uint8)
    cat[(f & bits) != 0] = MS_FW_ONLY
    cat[((w & bits) != 0) & ((f & bits) == 0)] = MS_BW_ONLY
    claimed = claim != 0
    cat[claimed] = MS_CLAIMED
    low = claim & (~claim + np.uint64(1))  # lowest set bit (0 if none)
    cat[claimed & (low == bits)] = MS_SCC
    return cat


@register("delta_expand_frontier", "numpy")
def delta_expand_frontier(
    indptr: np.ndarray,
    indices: np.ndarray,
    tomb: np.ndarray,
    add_indptr: np.ndarray,
    add_indices: np.ndarray,
    frontier: np.ndarray,
    *,
    return_sources: bool = False,
    unique: bool = False,
) -> Tuple[np.ndarray, np.ndarray] | np.ndarray:
    """Frontier expansion over a merged base + delta adjacency view.

    The mutable-graph twin of :func:`expand_frontier`: the adjacency of
    a node is its base CSR row minus the entries whose position is
    flagged in the ``tomb`` mask (aligned with ``indices``), plus its
    row in the delta-insertion CSR ``(add_indptr, add_indices)``
    maintained by :class:`repro.graph.delta.DeltaCSR`.

    Output order contract (what backend parity pins): per frontier
    slot, the surviving base entries come first (in base-row order,
    i.e. ascending) followed by the delta insertions (ascending); slots
    follow frontier order.  ``return_sources``/``unique`` behave as in
    :func:`expand_frontier`.
    """
    if unique and return_sources:
        raise ValueError("unique=True cannot be combined with return_sources")
    frontier = np.asarray(frontier, dtype=np.int64)
    num_nodes = indptr.shape[0] - 1
    if frontier.size == 0:
        return (_EMPTY, _EMPTY) if return_sources else _EMPTY
    counts_b = segment_counts(indptr, frontier)
    counts_a = segment_counts(add_indptr, frontier)
    total_b = int(counts_b.sum())
    total_a = int(counts_a.sum())
    slots = np.arange(frontier.shape[0], dtype=np.int64)
    if total_b:
        starts = indptr[frontier].astype(np.int64, copy=False)
        cum = np.cumsum(counts_b)
        idx = np.arange(total_b, dtype=np.int64) + np.repeat(
            starts - (cum - counts_b), counts_b
        )
        live = ~tomb[idx]
        t_base = indices[idx][live].astype(np.int64, copy=False)
        slot_b = np.repeat(slots, counts_b)[live]
    else:
        t_base = _EMPTY
        slot_b = _EMPTY
    if total_a:
        starts = add_indptr[frontier].astype(np.int64, copy=False)
        cum = np.cumsum(counts_a)
        idx = np.arange(total_a, dtype=np.int64) + np.repeat(
            starts - (cum - counts_a), counts_a
        )
        t_add = add_indices[idx].astype(np.int64, copy=False)
        slot_a = np.repeat(slots, counts_a)
    else:
        t_add = _EMPTY
        slot_a = _EMPTY
    if t_base.size + t_add.size == 0:
        return (_EMPTY, _EMPTY) if return_sources else _EMPTY
    # One stable sort on (slot, base-before-add) keys realizes the
    # per-slot grouping; within a key group the gather order (ascending
    # row positions) survives.
    key = np.concatenate([slot_b * 2, slot_a * 2 + 1])
    order = np.argsort(key, kind="stable")
    targets = np.concatenate([t_base, t_add])[order]
    if return_sources:
        sources = frontier[np.concatenate([slot_b, slot_a])[order]]
        return targets, sources
    if unique:
        return dedup_sorted(targets, num_nodes)
    return targets
