"""repro: parallel SCC detection in small-world graphs.

A production-quality Python reproduction of Hong, Rodia & Olukotun,
"On Fast Parallel Detection of Strongly Connected Components (SCC) in
Small-World Graphs" (SC 2013) — the FW-BW-Trim extensions (two-phase
parallelization, Par-WCC, Trim2), the conventional baseline, the
sequential optima, synthetic surrogates for the paper's nine
evaluation graphs, and a trace-driven simulated multiprocessor that
stands in for the paper's 32-hardware-thread Xeon (see DESIGN.md).

Quickstart::

    from repro import generators, strongly_connected_components
    from repro.runtime import Machine

    bundle = generators.generate("livej", scale=0.5)
    result = strongly_connected_components(bundle.graph, method="method2")
    print(result.num_sccs, result.giant_fraction())

    tarjan = strongly_connected_components(bundle.graph, method="tarjan")
    machine = Machine()
    t_seq = machine.simulate(tarjan.profile.trace, threads=1).total_time
    t_par = machine.simulate(result.profile.trace, threads=32).total_time
    print("simulated 32-thread speedup:", t_seq / t_par)
"""

from . import (
    analysis,
    core,
    engine,
    errors,
    generators,
    graph,
    runtime,
    service,
    traversal,
)
from .core import strongly_connected_components, SCCResult
from .engine import Engine
from .errors import (
    CheckpointError,
    GraphIngestError,
    GraphValidationError,
    MemoryBudgetError,
    PhaseTimeoutError,
    ReproError,
    ServiceOverloadError,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "engine",
    "Engine",
    "errors",
    "generators",
    "graph",
    "runtime",
    "service",
    "traversal",
    "strongly_connected_components",
    "SCCResult",
    "ReproError",
    "GraphIngestError",
    "GraphValidationError",
    "CheckpointError",
    "PhaseTimeoutError",
    "ServiceOverloadError",
    "MemoryBudgetError",
    "__version__",
]
