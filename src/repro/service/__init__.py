"""Service hardening layer over the execution engine.

Four cooperating guards keep a long-running ``repro serve`` daemon
healthy under bursty, faulty, memory-hungry load (DESIGN.md §11):

* :mod:`repro.service.govern` — admission control: a bounded request
  queue that sheds typed overload errors, plus a cost-model memory
  gate that refuses graphs the budget cannot fit;
* :mod:`repro.service.retry` — a reusable retry policy (exponential
  backoff, deterministic jitter, transient-vs-permanent failure
  classification) and per-backend circuit breakers that degrade down
  the executor ladder;
* :mod:`repro.service.governor` — an RSS memory governor that evicts
  warm pools/sessions under pressure and refuses admission before the
  OOM killer fires;
* :mod:`repro.service.server` — the transports and the
  :class:`~repro.service.server.SCCService` core wiring them all
  around one :class:`~repro.engine.Engine`.

Two more modules extend the daemon across processes (DESIGN.md §12):

* :mod:`repro.service.journal` — the crash-safe request journal whose
  accepted = completed + shed ledger survives worker (and front)
  crashes;
* :mod:`repro.service.workers` — the sharded serving tier: consistent-
  hash routing to forked engine workers, heartbeat supervision,
  bounded respawn, and in-flight replay.

The server and workers modules (and through them the engine) import
lazily, so ``from repro.service import RetryPolicy`` stays cheap.
"""

from .govern import (
    AdmissionConfig,
    AdmissionController,
    estimate_edge_list_size,
)
from .governor import GovernorConfig, MemoryGovernor, rss_bytes
from .retry import (
    PERMANENT,
    TRANSIENT,
    BackendBreakers,
    CircuitBreaker,
    RetryOutcome,
    RetryPolicy,
    classify_failure,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "estimate_edge_list_size",
    "GovernorConfig",
    "MemoryGovernor",
    "rss_bytes",
    "TRANSIENT",
    "PERMANENT",
    "classify_failure",
    "RetryPolicy",
    "RetryOutcome",
    "CircuitBreaker",
    "BackendBreakers",
    "ServiceConfig",
    "SCCService",
    "serve_stdin",
    "serve_socket",
    "RequestJournal",
    "JournalRecovery",
    "scan_journal",
    "WorkerTierConfig",
    "WorkerSupervisor",
    "HashRing",
    "routing_fingerprint",
    "RemoteRequestError",
]

_LAZY = {
    "ServiceConfig": "server",
    "SCCService": "server",
    "serve_stdin": "server",
    "serve_socket": "server",
    "RequestJournal": "journal",
    "JournalRecovery": "journal",
    "scan_journal": "journal",
    "WorkerTierConfig": "workers",
    "WorkerSupervisor": "workers",
    "HashRing": "workers",
    "routing_fingerprint": "workers",
    "RemoteRequestError": "workers",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is not None:
        import importlib

        return getattr(
            importlib.import_module(f".{module}", __name__), name
        )
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
