"""Service hardening layer over the execution engine.

Four cooperating guards keep a long-running ``repro serve`` daemon
healthy under bursty, faulty, memory-hungry load (DESIGN.md §11):

* :mod:`repro.service.govern` — admission control: a bounded request
  queue that sheds typed overload errors, plus a cost-model memory
  gate that refuses graphs the budget cannot fit;
* :mod:`repro.service.retry` — a reusable retry policy (exponential
  backoff, deterministic jitter, transient-vs-permanent failure
  classification) and per-backend circuit breakers that degrade down
  the executor ladder;
* :mod:`repro.service.governor` — an RSS memory governor that evicts
  warm pools/sessions under pressure and refuses admission before the
  OOM killer fires;
* :mod:`repro.service.server` — the transports and the
  :class:`~repro.service.server.SCCService` core wiring them all
  around one :class:`~repro.engine.Engine`.

The server module (and through it the engine) imports lazily, so
``from repro.service import RetryPolicy`` stays cheap.
"""

from .govern import (
    AdmissionConfig,
    AdmissionController,
    estimate_edge_list_size,
)
from .governor import GovernorConfig, MemoryGovernor, rss_bytes
from .retry import (
    PERMANENT,
    TRANSIENT,
    BackendBreakers,
    CircuitBreaker,
    RetryOutcome,
    RetryPolicy,
    classify_failure,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "estimate_edge_list_size",
    "GovernorConfig",
    "MemoryGovernor",
    "rss_bytes",
    "TRANSIENT",
    "PERMANENT",
    "classify_failure",
    "RetryPolicy",
    "RetryOutcome",
    "CircuitBreaker",
    "BackendBreakers",
    "ServiceConfig",
    "SCCService",
    "serve_stdin",
    "serve_socket",
]

_LAZY = {
    "ServiceConfig",
    "SCCService",
    "serve_stdin",
    "serve_socket",
}


def __getattr__(name: str):
    if name in _LAZY:
        from . import server

        return getattr(server, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
