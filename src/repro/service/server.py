"""The ``repro serve`` daemon: a hardened long-running serving front.

Requests are JSON objects, one per line (stdin/stdout by default, or
one request per connection on a Unix socket)::

    {"op": "run", "graph": "wiki", "scale": 0.1, "method": "method2",
     "backend": "processes", "deadline": 5.0, "id": "r1"}
    {"op": "update", "graph": "wiki", "scale": 0.1,
     "inserts": [[0, 7], [7, 0]], "deletes": [[3, 4]], "id": "u1"}
    {"op": "health"}
    {"op": "stats"}
    {"op": "shutdown"}

Every ``run`` request flows through the full hardening stack, in
order:

1. **admission** (:mod:`repro.service.govern`) — queue-depth shedding,
   cost-model memory refusal, and the memory governor's RSS veto, all
   *before* any work starts;
2. **deadline** — the per-request budget is converted to an absolute
   expiry at admission and the *remaining* budget is propagated into
   the engine's phase deadlines on every attempt, so retries never
   extend a request past its deadline;
3. **retry** (:mod:`repro.service.retry`) — transient failures
   (broken pool, phase timeout, injected chaos) back off and retry;
   permanent ones (bad input) fail fast with their typed exit code;
4. **circuit breaker** — consecutive transient failures on a backend
   trip its breaker, and subsequent requests degrade down the
   supervised -> processes -> serial ladder until the cooldown probe
   heals it;
5. **governor** (:mod:`repro.service.governor`) — RSS sampled per
   request; pressure evicts warm pools/sessions, hard-limit overshoot
   refuses admission.

Responses carry ``labels_crc32`` — the CRC of the canonical label
array — so clients (and the chaos tests) can verify bit-identical
results against an independent cold serial run without shipping the
full label vector.

**Graceful drain**: SIGTERM/SIGINT (or ``{"op": "shutdown"}``) stops
admission, lets in-flight requests finish, sheds everything queued
with typed :class:`~repro.errors.ServiceOverloadError` responses, and
atomically writes a final stats report before exiting 0.

**Sharded tier**: with ``worker_processes > 1`` (``repro serve
--workers N``) the same front fans admitted requests out to N forked
engine workers (:mod:`repro.service.workers`) with warm-session
affinity, crash failover replayed from a request journal
(:mod:`repro.service.journal`), and a two-phase drain that merges
every shard's stats into the final report; see DESIGN.md §12.
"""

from __future__ import annotations

import json
import queue
import signal
import socket
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import (
    IntegrityError,
    PhaseTimeoutError,
    ReproError,
    ServiceOverloadError,
    exit_code_for,
)
from ..ioutil import crc32_chunks
from .govern import (
    AdmissionConfig,
    AdmissionController,
    estimate_edge_list_size,
)
from .governor import GovernorConfig, MemoryGovernor
from .retry import BackendBreakers, RetryPolicy, classify_failure

__all__ = [
    "ServiceConfig",
    "SCCService",
    "serve_stdin",
    "serve_socket",
]

#: request keys forwarded verbatim into the method's keyword options.
_RUN_KEYS = frozenset(
    (
        "op",
        "id",
        "graph",
        "method",
        "backend",
        "workers",
        "seed",
        "scale",
        "on_error",
        "deadline",
        "options",
        "nodes",
        "edges",
        "fault_plan",
        "certify",
    )
)

#: request keys an ``update`` request may carry.  Updates are streamed
#: edge mutations against a (promoted-to-)mutable warm session; see
#: :meth:`repro.engine.Engine.update` and DESIGN.md §15.
_UPDATE_KEYS = frozenset(
    (
        "op",
        "id",
        "graph",
        "scale",
        "on_error",
        "inserts",
        "deletes",
        "compact",
        "compact_ratio",
        "damage_threshold",
        "nodes",
        "edges",
    )
)

#: request keys a ``stream`` request may carry.  Streams attach a live
#: edge feed to a warm mutable session; see :mod:`repro.ingest` and
#: DESIGN.md §16.
_STREAM_KEYS = frozenset(
    (
        "op",
        "id",
        "action",
        "name",
        "graph",
        "scale",
        "on_error",
        "source",
        "checkpoint",
        "batch_edges",
        "batch_age",
        "max_batches",
        "dedup_window",
        "degrade_log_ratio",
        "max_reconnects",
        "read_timeout",
        "stall_timeout",
        "stall_seconds",
        "fault_plan",
    )
)

#: request keys an ``analysis`` request may carry.  Analyses run the
#: structure suite (bow-tie, SCC histograms, clustering) over the
#: session's *current* labels — live-maintained when a stream feeds it.
_ANALYSIS_KEYS = frozenset(
    (
        "op",
        "id",
        "graph",
        "scale",
        "on_error",
        "kind",
        "samples",
        "seed",
    )
)

#: analysis kinds the ``analysis`` op accepts.
ANALYSIS_KINDS = ("summary", "histogram", "bowtie", "clustering")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one :class:`SCCService` enforces."""

    backend: str = "serial"
    workers: int = 2
    max_sessions: int = 8
    canonical: bool = True
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    governor: Optional[GovernorConfig] = None
    #: default per-request deadline, seconds (None = unbounded).
    default_deadline: Optional[float] = None
    #: forked engine workers behind the front (<= 1 = in-process path).
    worker_processes: int = 1
    #: seconds between worker heartbeats (sharded tier only).
    heartbeat_interval: float = 0.5
    #: respawns allowed per worker slot before it is lost for good.
    max_worker_restarts: int = 3
    #: crash-safe request journal path (None = no journal).
    journal_path: Optional[str] = None
    #: block-CRC sidecars over warm session arrays (repro.integrity).
    checksums: bool = True
    #: response to detected corruption: ``"quarantine"`` evicts the
    #: session and retries from source; ``"fail"`` answers exit 20.
    on_corruption: str = "quarantine"
    #: fraction of completed requests re-executed on the serial
    #: reference path by the background auditor (0 = off).
    audit_rate: float = 0.0
    #: seed for the auditor's deterministic request sample.
    audit_seed: int = 0
    #: delta-log compaction ratio for mutable sessions (None = the
    #: graph layer's default, :data:`repro.graph.DEFAULT_COMPACT_RATIO`).
    compact_ratio: Optional[float] = None
    #: component-size fraction past which an intra-SCC delete falls
    #: back to a full rebuild (None = the engine's default).
    damage_threshold: Optional[float] = None

    def shard(self) -> "ServiceConfig":
        """The per-worker slice of this config.

        Each forked worker runs its own :class:`SCCService` built from
        this: single-engine (no nested tier, no journal — the front
        owns the ledger), and with the session cache and the governor's
        memory limits divided by the fleet size so N workers together
        respect the *one* budget the operator configured.
        """
        import dataclasses

        n = max(1, self.worker_processes)
        governor = self.governor
        if governor is not None:
            governor = dataclasses.replace(
                governor,
                soft_limit_bytes=(
                    governor.soft_limit_bytes // n
                    if governor.soft_limit_bytes is not None
                    else None
                ),
                hard_limit_bytes=(
                    governor.hard_limit_bytes // n
                    if governor.hard_limit_bytes is not None
                    else None
                ),
            )
        return dataclasses.replace(
            self,
            worker_processes=1,
            journal_path=None,
            max_sessions=max(1, self.max_sessions // n),
            governor=governor,
            # the front audits end-to-end (it sees the final CRCs);
            # workers auditing their own answers would double the cost
            # without widening coverage.
            audit_rate=0.0,
        )


class SCCService:
    """The hardened serving core (transport-agnostic).

    :meth:`handle` maps one request dict to one response dict and is
    safe to call from many threads at once: admission bounds how many
    requests may wait, the internal turnstile serializes engine access
    (warm sessions are not thread-safe), and :meth:`drain` sheds the
    waiters while the in-flight request finishes.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        engine=None,
        fault_plan=None,
        clock=time.monotonic,
    ) -> None:
        from ..engine.engine import Engine

        self.config = cfg = config or ServiceConfig()
        if cfg.on_corruption not in ("quarantine", "fail"):
            raise ValueError(
                f"on_corruption must be 'quarantine' or 'fail', "
                f"got {cfg.on_corruption!r}"
            )
        self.engine = engine or Engine(
            backend=cfg.backend,
            num_workers=cfg.workers,
            canonical=cfg.canonical,
            max_sessions=cfg.max_sessions,
            integrity=cfg.checksums,
        )
        self.governor = (
            MemoryGovernor(self.engine, cfg.governor, clock=clock)
            if cfg.governor is not None
            else None
        )
        self.admission = AdmissionController(
            cfg.admission,
            refusal_hook=(
                self.governor.refusal if self.governor else None
            ),
        )
        self.breakers = BackendBreakers(
            threshold=cfg.breaker_threshold,
            cooldown=cfg.breaker_cooldown,
            clock=clock,
        )
        #: service-level chaos channel, fired at the "request" site
        #: with the request's admission sequence number as the index.
        self.fault_plan = fault_plan
        self.journal = None
        if cfg.journal_path:
            from .journal import RequestJournal

            self.journal = RequestJournal(cfg.journal_path)
        self.supervisor = None
        if cfg.worker_processes > 1:
            from ..engine.pool import fork_available

            if fork_available():
                from .workers import WorkerSupervisor, WorkerTierConfig

                tier = WorkerTierConfig(
                    num_workers=cfg.worker_processes,
                    heartbeat_interval=cfg.heartbeat_interval,
                    max_worker_restarts=cfg.max_worker_restarts,
                )
                self.supervisor = WorkerSupervisor(
                    cfg.shard(),
                    tier,
                    journal=self.journal,
                    on_worker_failure=(
                        lambda backend, worker: self.breakers.record(
                            backend, ok=False
                        )
                    ),
                ).start()
        #: attached live edge feeds, by name (``stream`` op registry).
        self.streams: dict = {}
        self._streams_lock = threading.Lock()
        self._seq = 0
        self._seq_lock = threading.Lock()
        # engine turnstile: one request runs at a time; waiters are
        # shed on drain.
        self._cond = threading.Condition()
        self._active = False
        self._shedding = False
        self._started = clock()
        self._clock = clock
        self.auditor = None
        if cfg.audit_rate > 0:
            from ..integrity import SelfAuditor

            self.auditor = SelfAuditor(
                rate=cfg.audit_rate,
                seed=cfg.audit_seed,
                on_mismatch=self._on_audit_mismatch,
            )
        # stats
        self.requests = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.retried = 0
        self.degraded_runs = 0
        self.transport_errors = 0
        self.integrity_detected = 0
        self.integrity_quarantines = 0
        self.certificates_issued = 0
        self.updates = 0
        self.updates_applied = 0

    # -- lifecycle ------------------------------------------------------
    def drain(self) -> None:
        """Phase 1 of the drain: stop intake everywhere.

        Admission stops admitting, queued turnstile waiters shed, and
        the worker tier refuses new dispatches; in-flight work — local
        or already on a worker — finishes (phase 2, :meth:`close`).
        """
        with self._streams_lock:
            feeds = list(self.streams.values())
        for feed in feeds:
            feed.consumer.stop()
        self.admission.drain()
        if self.supervisor is not None:
            self.supervisor.begin_drain()
        with self._cond:
            self._shedding = True
            self._cond.notify_all()

    @property
    def draining(self) -> bool:
        return self.admission.draining

    def close(self) -> None:
        """Phase 2: drain the worker fleet, then release everything."""
        with self._streams_lock:
            feeds = list(self.streams.values())
            self.streams.clear()
        for feed in feeds:
            feed.consumer.stop()
            feed.thread.join(timeout=10.0)
            feed.source.close()
        if self.supervisor is not None:
            self.supervisor.stop()
        if self.auditor is not None:
            self.auditor.stop()
        self.engine.close()
        if self.journal is not None:
            self.journal.close()

    def _on_audit_mismatch(self, record, reference_crc: int) -> None:
        """An audited request's reference replay disagreed: the served
        answer was wrong and nothing upstream noticed.  Quarantine the
        session the answer came from (in-process topology; a sharded
        worker's session is out of the front engine's reach, which the
        no-op quarantine tolerates) and mark the serving backend
        suspect so the breakers steer the next requests away."""
        self.integrity_detected += 1
        if (
            record.fingerprint is not None
            and self.config.on_corruption == "quarantine"
        ):
            try:
                with self._engine_turn():
                    if self.engine.quarantine(record.fingerprint):
                        self.integrity_quarantines += 1
            except ServiceOverloadError:
                pass  # draining: the sessions die with the service.
        if record.backend_used:
            self.breakers.record(record.backend_used, ok=False)

    def __enter__(self) -> "SCCService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @contextmanager
    def _engine_turn(self):
        """Serialize engine access; queued waiters shed on drain."""
        with self._cond:
            while self._active and not self._shedding:
                self._cond.wait(0.05)
            if self._shedding:
                raise ServiceOverloadError(
                    "service draining; queued request shed",
                    reason="draining",
                )
            self._active = True
        try:
            yield
        finally:
            with self._cond:
                self._active = False
                self._cond.notify_all()

    # -- request handling ----------------------------------------------
    def handle(self, request: dict) -> dict:
        """One request dict in, one response dict out (never raises)."""
        op = request.get("op", "run")
        try:
            if op == "run":
                return self._handle_run(request)
            if op == "update":
                return self._handle_update(request)
            if op == "stream":
                return self._handle_stream(request)
            if op == "analysis":
                return self._handle_analysis(request)
            if op == "health":
                return self._handle_health(request)
            if op == "stats":
                return dict(
                    self.stats(), op="stats", id=request.get("id"), ok=True
                )
            if op == "shutdown":
                self.drain()
                return {
                    "op": "shutdown",
                    "id": request.get("id"),
                    "ok": True,
                    "draining": True,
                }
            return self._error_response(
                request, ValueError(f"unknown op {op!r}")
            )
        except Exception as exc:  # the transport must always answer
            return self._error_response(request, exc)

    def _handle_health(self, request: dict) -> dict:
        return {
            "op": "health",
            "id": request.get("id"),
            "ok": True,
            "status": "draining" if self.draining else "serving",
            "uptime_seconds": self._clock() - self._started,
            "queue_depth": self.admission.depth,
            "sessions": len(self.engine.sessions),
            "rss_bytes": (
                self.governor.sample() if self.governor else None
            ),
        }

    def _size_hint(self, request: dict):
        """Best-effort ``(nodes, edges)`` for the admission cost check."""
        if request.get("nodes") is not None and request.get("edges") is not None:
            return int(request["nodes"]), int(request["edges"])
        source = request.get("graph", "")
        from ..generators import DATASETS

        if source and source not in DATASETS:
            return estimate_edge_list_size(source) or (None, None)
        return None, None

    def _handle_run(self, request: dict) -> dict:
        unknown = sorted(set(request) - _RUN_KEYS)
        if unknown:
            return self._error_response(
                request,
                ValueError(
                    f"unknown request key(s) {unknown}; "
                    f"known: {sorted(_RUN_KEYS)}"
                ),
            )
        if not request.get("graph"):
            return self._error_response(
                request, ValueError("run request needs a 'graph' source")
            )
        self.requests += 1
        with self._seq_lock:
            seq = self._seq
            self._seq += 1
        requested = request.get("backend", self.config.backend)
        workers = int(request.get("workers", self.config.workers))
        budget = request.get("deadline", self.config.default_deadline)
        t0 = time.perf_counter()
        journaled = False
        try:
            nodes, edges = self._size_hint(request)
            with self.admission.admit(
                nodes=nodes,
                edges=edges,
                backend=requested,
                num_workers=workers,
            ):
                # Past admission the request is *accepted*: from here
                # it must complete or shed — the journal's invariant.
                if self.journal is not None:
                    self.journal.accepted(seq, request)
                    journaled = True
                if (
                    self.supervisor is not None
                    and self.supervisor.available
                ):
                    response = self._execute_sharded(
                        request, seq, requested, budget
                    )
                else:
                    # N=1, fork unavailable, or the whole fleet lost:
                    # the in-process single-engine path is the floor.
                    response = self._execute(
                        request, seq, requested, workers, budget
                    )
            self.completed += 1
            if journaled:
                self.journal.completed(
                    seq,
                    ok=True,
                    labels_crc32=response.get("labels_crc32"),
                )
            if response.get("certificate") is not None:
                self.certificates_issued += 1
            if self.auditor is not None and response.get("ok"):
                # the reference replay must be clean: strip the chaos
                # drill, keep everything that shapes the answer.
                audit_req = {
                    k: v
                    for k, v in request.items()
                    if k in _RUN_KEYS
                    and k not in ("fault_plan", "certify", "id")
                }
                self.auditor.maybe_submit(
                    seq,
                    audit_req,
                    response.get("labels_crc32"),
                    backend_used=response.get("backend_used"),
                    fingerprint=response.get("session_fingerprint"),
                )
            response["seconds"] = time.perf_counter() - t0
            return response
        except Exception as exc:
            resp = self._error_response(request, exc)
            if journaled:
                if resp.get("shed"):
                    self.journal.shed(
                        seq,
                        reason=getattr(exc, "reason", "overload"),
                    )
                else:
                    self.journal.completed(
                        seq,
                        ok=False,
                        error_type=resp.get("error_type"),
                    )
            resp["seconds"] = time.perf_counter() - t0
            return resp

    @staticmethod
    def _edge_pairs(raw, what: str) -> list:
        """Validate a request's edge list into ``(u, v)`` int pairs."""
        pairs = []
        for item in raw or ():
            try:
                u, v = item
                pairs.append((int(u), int(v)))
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"bad {what} entry {item!r}: "
                    "need [u, v] integer pairs"
                ) from exc
        return pairs

    def _handle_update(self, request: dict) -> dict:
        """One streamed edge-update batch against a mutable session.

        Flows through the same admission gate and journal lifecycle as
        a ``run`` (accepted -> completed/shed); on the sharded tier the
        batch is pinned to the worker that owns the graph's mutable
        session (see :mod:`repro.service.workers`).  The response's
        ``graph_version`` and ``labels_crc32`` name the exact post-
        update state — the CRC is bit-comparable to a from-scratch
        run's canonical labels.
        """
        unknown = sorted(set(request) - _UPDATE_KEYS)
        if unknown:
            return self._error_response(
                request,
                ValueError(
                    f"unknown request key(s) {unknown}; "
                    f"known: {sorted(_UPDATE_KEYS)}"
                ),
            )
        if not request.get("graph"):
            return self._error_response(
                request,
                ValueError("update request needs a 'graph' source"),
            )
        try:
            inserts = self._edge_pairs(request.get("inserts"), "inserts")
            deletes = self._edge_pairs(request.get("deletes"), "deletes")
        except ValueError as exc:
            return self._error_response(request, exc)
        self.requests += 1
        self.updates += 1
        with self._seq_lock:
            seq = self._seq
            self._seq += 1
        t0 = time.perf_counter()
        journaled = False
        try:
            nodes, edges = self._size_hint(request)
            with self.admission.admit(
                nodes=nodes,
                edges=edges,
                backend=self.config.backend,
                num_workers=1,
            ):
                if self.journal is not None:
                    self.journal.accepted(seq, request)
                    journaled = True
                if (
                    self.supervisor is not None
                    and self.supervisor.available
                ):
                    response = self._execute_update_sharded(request, seq)
                else:
                    response = self._execute_update(
                        request, inserts, deletes
                    )
            self.completed += 1
            if response.get("applied"):
                self.updates_applied += 1
            if journaled:
                self.journal.completed(
                    seq,
                    ok=True,
                    labels_crc32=response.get("labels_crc32"),
                    version=response.get("graph_version"),
                )
            response["seconds"] = time.perf_counter() - t0
            return response
        except Exception as exc:
            resp = self._error_response(request, exc)
            if journaled:
                if resp.get("shed"):
                    self.journal.shed(
                        seq,
                        reason=getattr(exc, "reason", "overload"),
                    )
                else:
                    self.journal.completed(
                        seq,
                        ok=False,
                        error_type=resp.get("error_type"),
                    )
            resp["seconds"] = time.perf_counter() - t0
            return resp

    def _execute_update(
        self, request: dict, inserts: list, deletes: list
    ) -> dict:
        with self._engine_turn():
            session = self.engine.load(
                request["graph"],
                scale=request.get("scale"),
                seed=None,
                on_error=request.get("on_error", "strict"),
            )
            try:
                if request.get("compact"):
                    # explicit degrade-to-snapshot: fold the delta log
                    # now (a streaming consumer over its compaction-
                    # debt budget sends this).
                    report = self.engine.compact(session)
                else:
                    report = self.engine.update(
                        session,
                        inserts,
                        deletes,
                        compact_ratio=request.get(
                            "compact_ratio", self.config.compact_ratio
                        ),
                        damage_threshold=request.get(
                            "damage_threshold", self.config.damage_threshold
                        ),
                    )
            except IntegrityError:
                self.integrity_detected += 1
                if self.config.on_corruption == "quarantine":
                    if self.engine.quarantine(session.fingerprint):
                        self.integrity_quarantines += 1
                raise
        return {
            "op": "update",
            "id": request.get("id"),
            "ok": True,
            "graph": request["graph"],
            "graph_version": report.version,
            "applied": report.applied,
            "changed": report.changed,
            "compacted": report.compacted,
            "inserts": report.inserts,
            "deletes": report.deletes,
            "num_sccs": report.num_components,
            "labels_crc32": report.labels_crc32,
            "session_fingerprint": report.fingerprint,
            "stats": report.stats,
            "log_ratio": report.log_ratio,
        }

    def _execute_update_sharded(self, request: dict, seq: int) -> dict:
        from .workers import RemoteRequestError

        forward = {k: v for k, v in request.items() if k in _UPDATE_KEYS}
        response = self.supervisor.execute(forward, seq, budget=None)
        if not response.get("ok", False):
            if response.get("shed"):
                raise ServiceOverloadError(
                    response.get("error", "worker shed the update"),
                    reason="worker-overload",
                )
            raise RemoteRequestError(response)
        response = dict(response)
        response["id"] = request.get("id")
        return response

    # -- stream op: live edge feeds over mutable sessions ----------------
    def _handle_stream(self, request: dict) -> dict:
        """Attach / inspect / detach a live edge feed.

        ``attach`` spawns a consumer thread that pulls the named
        source, batches edits, and drives them through the service's
        own ``update`` path — so every applied batch pays admission,
        lands a journal stamp, and (on the sharded tier) pins to the
        worker owning the mutable session, exactly like a client-sent
        update.  ``status`` reports the consumer's counters and
        freshness lag; ``detach`` stops the feed and returns the final
        stats.  Feeds are stopped automatically on drain.
        """
        unknown = sorted(set(request) - _STREAM_KEYS)
        if unknown:
            return self._error_response(
                request,
                ValueError(
                    f"unknown request key(s) {unknown}; "
                    f"known: {sorted(_STREAM_KEYS)}"
                ),
            )
        action = request.get("action", "status")
        self.requests += 1
        try:
            if action == "attach":
                response = self._stream_attach(request)
            elif action == "status":
                response = self._stream_status(request)
            elif action == "detach":
                response = self._stream_detach(request)
            else:
                raise ValueError(
                    f"unknown stream action {action!r}; "
                    f"known: ['attach', 'detach', 'status']"
                )
        except Exception as exc:
            return self._error_response(request, exc)
        self.completed += 1
        return response

    def _stream_fault_plan(self, request: dict):
        """Per-feed chaos: network-kind specs retargeted at the
        source's ``"stream"`` site, with the drill's stall duration."""
        if not request.get("fault_plan"):
            return None
        import dataclasses

        from ..runtime.faults import NETWORK_KINDS, FaultPlan

        plan = FaultPlan.parse(request["fault_plan"])
        stall = float(request.get("stall_seconds") or 0.0)
        specs = []
        for spec in plan.specs:
            if spec.kind in NETWORK_KINDS:
                spec = dataclasses.replace(
                    spec,
                    site="stream",
                    hang_seconds=(stall or spec.hang_seconds),
                )
            specs.append(spec)
        return FaultPlan(specs)

    def _stream_attach(self, request: dict) -> dict:
        from ..ingest.checkpoint import StreamCheckpoint
        from ..ingest.consumer import StreamConsumer
        from ..ingest.sources import open_source

        if not request.get("graph"):
            raise ValueError("stream attach needs a 'graph' source")
        if not request.get("source"):
            raise ValueError(
                "stream attach needs a 'source' feed spec "
                "(tail:<path>, tail-once:<path>, socket:<path>, "
                "tcp:<host>:<port>)"
            )
        name = str(request.get("name") or request["graph"])
        source_kwargs = {
            "fault_plan": self._stream_fault_plan(request),
        }
        if request.get("max_reconnects") is not None:
            source_kwargs["max_reconnects"] = int(request["max_reconnects"])
        if request.get("read_timeout") is not None:
            source_kwargs["read_timeout"] = float(request["read_timeout"])
        if request.get("stall_timeout") is not None:
            source_kwargs["stall_timeout"] = float(request["stall_timeout"])
        source = open_source(str(request["source"]), **source_kwargs)
        checkpoint = (
            StreamCheckpoint(request["checkpoint"])
            if request.get("checkpoint")
            else None
        )
        applier = _ServiceApplier(self, request)
        try:
            consumer = StreamConsumer(
                source,
                applier,
                on_error=request.get("on_error", "skip"),
                dedup_window=int(request.get("dedup_window", 1024)),
                checkpoint=checkpoint,
                batch_edges=int(request.get("batch_edges", 512)),
                batch_age=float(request.get("batch_age", 0.5)),
                degrade_log_ratio=request.get("degrade_log_ratio"),
                max_batches=request.get("max_batches"),
            )
        except Exception:
            source.close()
            raise
        feed = _StreamFeed(name, request, source, consumer)
        with self._streams_lock:
            if name in self.streams:
                source.close()
                raise ValueError(f"stream {name!r} is already attached")
            self.streams[name] = feed
        feed.thread.start()
        return {
            "op": "stream",
            "id": request.get("id"),
            "ok": True,
            "action": "attach",
            "name": name,
            "graph": request["graph"],
            "source": source.describe(),
            "resumed": consumer.resumed,
        }

    def _stream_get(self, request: dict):
        name = request.get("name") or request.get("graph")
        if not name:
            raise ValueError("stream request needs a 'name' (or 'graph')")
        with self._streams_lock:
            feed = self.streams.get(str(name))
        if feed is None:
            with self._streams_lock:
                known = sorted(self.streams)
            raise ValueError(
                f"no attached stream {name!r}; attached: {known}"
            )
        return feed

    def _stream_status(self, request: dict) -> dict:
        feed = self._stream_get(request)
        return {
            "op": "stream",
            "id": request.get("id"),
            "ok": True,
            "action": "status",
            "name": feed.name,
            "alive": feed.thread.is_alive(),
            "error": feed.error_text(),
            "stats": feed.consumer.stats(),
        }

    def _stream_detach(self, request: dict) -> dict:
        feed = self._stream_get(request)
        feed.consumer.stop()
        feed.thread.join(timeout=30.0)
        feed.source.close()
        with self._streams_lock:
            self.streams.pop(feed.name, None)
        return {
            "op": "stream",
            "id": request.get("id"),
            "ok": True,
            "action": "detach",
            "name": feed.name,
            "error": feed.error_text(),
            "stats": feed.consumer.stats(),
        }

    # -- analysis op: structure suite over the live session --------------
    def _handle_analysis(self, request: dict) -> dict:
        """Run one structure analysis over a session's current labels.

        On a stream-fed mutable session the labels are the live
        incrementally-maintained ones — the response's
        ``graph_version`` says exactly which update epoch the numbers
        describe.  A cold session pays one full detection first.
        """
        unknown = sorted(set(request) - _ANALYSIS_KEYS)
        if unknown:
            return self._error_response(
                request,
                ValueError(
                    f"unknown request key(s) {unknown}; "
                    f"known: {sorted(_ANALYSIS_KEYS)}"
                ),
            )
        if not request.get("graph"):
            return self._error_response(
                request, ValueError("analysis request needs a 'graph'")
            )
        kind = request.get("kind", "summary")
        if kind not in ANALYSIS_KINDS:
            return self._error_response(
                request,
                ValueError(
                    f"unknown analysis kind {kind!r}; "
                    f"known: {list(ANALYSIS_KINDS)}"
                ),
            )
        self.requests += 1
        t0 = time.perf_counter()
        try:
            with self.admission.admit(
                backend=self.config.backend, num_workers=1
            ):
                with self._engine_turn():
                    result, version, num_sccs = self._execute_analysis(
                        request, kind
                    )
        except Exception as exc:
            resp = self._error_response(request, exc)
            resp["seconds"] = time.perf_counter() - t0
            return resp
        self.completed += 1
        return {
            "op": "analysis",
            "id": request.get("id"),
            "ok": True,
            "kind": kind,
            "graph": request["graph"],
            "graph_version": version,
            "num_sccs": num_sccs,
            "result": result,
            "seconds": time.perf_counter() - t0,
        }

    def _execute_analysis(self, request: dict, kind: str):
        import dataclasses

        import numpy as np

        from .. import analysis
        from ..core.result import canonical_labels

        session = self.engine.load(
            request["graph"],
            scale=request.get("scale"),
            seed=None,
            on_error=request.get("on_error", "strict"),
        )
        if session.dynamic is not None:
            labels = canonical_labels(
                np.ascontiguousarray(
                    session.dynamic.labels, dtype=np.int64
                )
            )
        else:
            labels = self.engine.run(session).labels
        num_sccs = int(labels.max()) + 1 if labels.size else 0
        if kind == "summary":
            summary = analysis.summarize_scc_structure(labels)
            result = dataclasses.asdict(summary)
        elif kind == "histogram":
            hist = analysis.size_histogram(labels)
            result = {
                "sizes": {str(k): int(v) for k, v in sorted(hist.items())},
                "giant_fraction": analysis.giant_fraction(labels),
            }
        elif kind == "bowtie":
            tie = analysis.bowtie_decomposition(session.graph, labels)
            result = dict(
                tie.fractions(),
                counts={
                    "core": tie.core,
                    "in": tie.inset,
                    "out": tie.outset,
                    "other": tie.other,
                },
            )
        else:  # clustering
            result = {
                "average_clustering": analysis.average_clustering(
                    session.graph,
                    samples=int(request.get("samples", 200)),
                    rng=int(request.get("seed", 0)),
                )
            }
        return result, session.version, num_sccs

    def _execute(
        self,
        request: dict,
        seq: int,
        requested: str,
        workers: int,
        budget: Optional[float],
    ) -> dict:
        expiry = (
            time.monotonic() + float(budget) if budget is not None else None
        )
        supervisor = None
        corrupt_specs: tuple = ()
        if request.get("fault_plan"):
            # per-request chaos drill, exactly like a batch job's
            # fault_plan field.  ``corrupt`` specs rot the warm arrays
            # right here (detection is the integrity tier's job, no
            # supervised backend needed); anything else still forces
            # the supervised backend.
            from ..runtime.faults import FaultPlan
            from ..runtime.supervisor import SupervisorConfig

            plan = FaultPlan.parse(request["fault_plan"])
            corrupt_specs = tuple(
                s for s in plan.specs if s.kind == "corrupt"
            )
            rest = [s for s in plan.specs if s.kind != "corrupt"]
            if rest:
                requested = "supervised"
                supervisor = SupervisorConfig(fault_plan=FaultPlan(rest))
        used = [requested]

        def corrupt_session(session, attempt: int) -> None:
            """Apply armed bit flips to the warm session's arrays.

            Request-carried ``corrupt`` specs target *this* request
            regardless of their site/index (``times`` still bounds the
            attempts hit, so the default 1 rots the first attempt and
            lets the retry's rebuilt session through); the service
            plan's specs match the ``"request"`` site by admission
            sequence as usual.  ``"phase"``-site specs are not applied
            here — they ride into :meth:`Engine.run` to fire at exact
            phase boundaries.
            """
            from ..runtime.faults import apply_corruption

            armed = [
                s
                for s in corrupt_specs
                if s.site != "phase" and attempt < s.times
            ]
            if self.fault_plan is not None:
                armed.extend(
                    self.fault_plan.corruptions("request", seq, attempt)
                )
            for spec in armed:
                if spec.array in ("labels", "color"):
                    continue  # run-owned state: use a "phase" plan.
                if spec.array in ("in_indptr", "in_indices"):
                    session.ensure_transpose()
                elif spec.array in ("out_degrees", "in_degrees"):
                    session.effective_degrees()
                apply_corruption(
                    session.integrity_arrays()[spec.array], spec
                )

        def phase_fault_plan(attempt: int):
            """The boundary-timed slice of the drill for this attempt
            (``times``-gated like the direct flips above).  Service-
            level "phase"-site corrupt specs (from ``--fault-plan``)
            hit every request's run the same way."""
            armed = [
                s
                for s in corrupt_specs
                if s.site == "phase" and attempt < s.times
            ]
            if self.fault_plan is not None:
                armed.extend(
                    s
                    for s in self.fault_plan.specs
                    if s.kind == "corrupt"
                    and s.site == "phase"
                    and attempt < s.times
                )
            if not armed:
                return None
            from ..runtime.faults import FaultPlan

            return FaultPlan(armed)

        def attempt_fn(attempt: int):
            backend = self.breakers.resolve(requested)
            used[0] = backend
            if self.fault_plan is not None:
                self.fault_plan.fire(
                    "request",
                    seq,
                    stage="pre",
                    attempt=attempt,
                    thread_site=True,
                )
            remaining = None
            if expiry is not None:
                remaining = expiry - time.monotonic()
                if remaining <= 0:
                    raise PhaseTimeoutError("request", float(budget))
            with self._engine_turn():
                session = self.engine.load(
                    request["graph"],
                    scale=request.get("scale"),
                    seed=None,
                    on_error=request.get("on_error", "strict"),
                )
                corrupt_session(session, attempt)
                runs_before = session.stats.runs
                warm_before = session.stats.warm_runs
                try:
                    result = self.engine.run(
                        session,
                        method=request.get("method", "method2"),
                        backend=backend,
                        num_workers=workers,
                        seed=request.get("seed", 0),
                        supervisor=supervisor,
                        deadline=remaining,
                        fault_plan=phase_fault_plan(attempt),
                        **(request.get("options") or {}),
                    )
                    certificate = None
                    if request.get("certify"):
                        from ..integrity import certify_result

                        level = request["certify"]
                        certificate = certify_result(
                            session.graph,
                            result.labels,
                            level=(
                                "sample" if level is True else str(level)
                            ),
                            seed=int(request.get("seed", 0) or 0),
                        )
                        # pin the certificate to the exact graph state
                        # it proves: mutable sessions advance this per
                        # applied update batch.
                        certificate["graph_version"] = session.version
                except IntegrityError as exc:
                    # corruption (or a failed certificate) caught
                    # before any response: quarantine the rotten
                    # session so the retry rebuilds from source, or
                    # fail the request typed when the operator asked
                    # for loud failures.
                    self.integrity_detected += 1
                    if self.config.on_corruption == "quarantine":
                        if self.engine.quarantine(session.fingerprint):
                            self.integrity_quarantines += 1
                    else:
                        exc.transient_hint = False
                    raise
                warm = (
                    session.stats.runs == runs_before + 1
                    and session.stats.warm_runs == warm_before + 1
                )
            return backend, session, result, warm, certificate

        def on_failure(exc: BaseException, attempt: int) -> None:
            # Only infra failures are backend-health signals; a typo'd
            # method or corrupt file says nothing about the pool.
            if classify_failure(exc) == "transient":
                self.breakers.record(used[0], ok=False)

        outcome = self.config.retry.execute(
            attempt_fn, key=seq, on_failure=on_failure
        )
        backend, session, result, warm, certificate = outcome.value
        self.breakers.record(backend, ok=True)
        if outcome.attempts > 1:
            self.retried += 1
        if backend != requested:
            self.degraded_runs += 1
        if self.governor is not None:
            self.governor.relieve()
        response = {
            "op": "run",
            "id": request.get("id"),
            "ok": True,
            "graph": request["graph"],
            "method": request.get("method", "method2"),
            "backend_requested": requested,
            "backend_used": backend,
            "num_sccs": result.num_sccs,
            "largest_scc": result.largest_scc_size(),
            "giant_fraction": result.giant_fraction(),
            "labels_crc32": crc32_chunks(result.labels.tobytes()),
            "warm": warm,
            "attempts": outcome.attempts,
            "backoff_seconds": outcome.backoff_seconds,
            "retried_errors": outcome.errors,
            "session_fingerprint": session.fingerprint,
            "graph_version": session.version,
        }
        if certificate is not None:
            response["certificate"] = certificate
        return response

    def _execute_sharded(
        self,
        request: dict,
        seq: int,
        requested: str,
        budget: Optional[float],
    ) -> dict:
        """Run one request on the worker fleet, front retry included.

        The front's breakers and retry policy wrap the *dispatch*: a
        worker answering ``ok: false`` re-raises typed (the worker-side
        verdict crossing the pipe as ``transient_hint``), a worker
        dying mid-request is replayed by the supervisor underneath and
        only surfaces here as :class:`~repro.errors.WorkerLostError`
        once replay is exhausted — which is transient, because the
        respawned worker can serve the next attempt.
        """
        from .workers import RemoteRequestError

        expiry = (
            time.monotonic() + float(budget) if budget is not None else None
        )
        used = [requested]

        def attempt_fn(attempt: int):
            backend = self.breakers.resolve(requested)
            used[0] = backend
            if self.fault_plan is not None:
                self.fault_plan.fire(
                    "request",
                    seq,
                    stage="pre",
                    attempt=attempt,
                    thread_site=True,
                )
            remaining = None
            if expiry is not None:
                remaining = expiry - time.monotonic()
                if remaining <= 0:
                    raise PhaseTimeoutError("request", float(budget))
            forward = {
                k: v for k, v in request.items() if k in _RUN_KEYS
            }
            forward["backend"] = backend
            if remaining is not None:
                forward["deadline"] = remaining
            response = self.supervisor.execute(
                forward, seq, budget=remaining
            )
            if not response.get("ok", False):
                if response.get("shed"):
                    raise ServiceOverloadError(
                        response.get("error", "worker shed the request"),
                        reason="worker-overload",
                    )
                raise RemoteRequestError(response)
            return response

        def on_failure(exc: BaseException, attempt: int) -> None:
            if classify_failure(exc) == "transient":
                self.breakers.record(used[0], ok=False)

        outcome = self.config.retry.execute(
            attempt_fn, key=seq, on_failure=on_failure
        )
        response = dict(outcome.value)
        backend = used[0]
        self.breakers.record(backend, ok=True)
        if outcome.attempts > 1:
            self.retried += 1
        if backend != requested:
            self.degraded_runs += 1
        if self.governor is not None:
            self.governor.relieve()
        response["id"] = request.get("id")
        response["backend_requested"] = requested
        response["front_attempts"] = outcome.attempts
        return response

    def _error_response(self, request: dict, exc: Exception) -> dict:
        shed = isinstance(exc, ServiceOverloadError)
        if shed:
            self.shed += 1
        else:
            self.failed += 1
        outcome = getattr(exc, "__retry_outcome__", None)
        error_type = type(exc).__name__
        exit_code = exit_code_for(exc)
        message = str(exc) or error_type
        remote = getattr(exc, "response", None)
        if isinstance(remote, dict) and "error_type" in remote:
            # a worker's typed failure: surface the original taxonomy,
            # not the RemoteRequestError envelope it crossed the pipe in.
            error_type = remote["error_type"]
            exit_code = int(remote.get("exit_code", exit_code))
            message = remote.get("error", message)
        return {
            "op": request.get("op", "run"),
            "id": request.get("id"),
            "ok": False,
            "shed": shed,
            "error": message,
            "error_type": error_type,
            "exit_code": exit_code,
            "transient": classify_failure(exc) == "transient",
            "attempts": outcome.attempts if outcome is not None else 0,
        }

    # -- introspection --------------------------------------------------
    def stats(self) -> dict:
        sessions = {
            f"{s.fingerprint:#010x}": dict(
                s.stats.to_dict(),
                name=s.name,
                estimated_bytes=s.estimated_bytes(),
            )
            for s in self.engine.sessions
        }
        return {
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "retried": self.retried,
            "degraded_runs": self.degraded_runs,
            "transport_errors": self.transport_errors,
            "updates": self.updates,
            "updates_applied": self.updates_applied,
            "uptime_seconds": self._clock() - self._started,
            "admission": self.admission.to_dict(),
            "integrity": {
                "checksums": self.config.checksums,
                "on_corruption": self.config.on_corruption,
                "detected": self.integrity_detected,
                "quarantines": self.integrity_quarantines,
                "engine_quarantines": self.engine.quarantines,
                "certificates_issued": self.certificates_issued,
                "verifications": sum(
                    s.stats.integrity_verifications
                    for s in self.engine.sessions
                ),
                "audit": (
                    self.auditor.to_dict() if self.auditor else None
                ),
            },
            "breakers": self.breakers.to_dict(),
            "governor": (
                self.governor.to_dict() if self.governor else None
            ),
            "sessions": sessions,
            "streams": {
                feed.name: {
                    "alive": feed.thread.is_alive(),
                    "error": feed.error_text(),
                    "stats": feed.consumer.stats(),
                }
                for feed in list(self.streams.values())
            },
            "workers": (
                self.supervisor.to_dict() if self.supervisor else None
            ),
            "journal": (
                self.journal.reconcile() if self.journal else None
            ),
        }

    def note_transport_error(self) -> None:
        """Record a client that vanished mid-read/mid-response."""
        self.transport_errors += 1

    def write_report(self, path) -> None:
        """Atomically publish the final stats report (drain epilogue).

        With a worker fleet, fresh per-worker snapshots are pulled
        first so the merged report covers every shard, not just the
        front."""
        from ..ioutil import atomic_path

        if self.supervisor is not None:
            try:
                self.supervisor.collect_stats()
            except Exception:
                pass
        if self.auditor is not None:
            # let queued audits land so the report tells the truth.
            self.auditor.drain(timeout=10.0)
        with atomic_path(path, suffix=".json") as tmp:
            with open(tmp, "w") as fh:
                json.dump(self.stats(), fh, indent=2, sort_keys=True)
                fh.write("\n")


class _StreamFeed:
    """One attached live feed: its source, consumer, and thread."""

    def __init__(self, name, request, source, consumer) -> None:
        self.name = name
        self.request = dict(request)
        self.source = source
        self.consumer = consumer
        self.error: Optional[BaseException] = None
        self.thread = threading.Thread(
            target=self._run, name=f"stream-{name}", daemon=True
        )

    def _run(self) -> None:
        try:
            self.consumer.run()
        except BaseException as exc:  # surfaced via status/detach
            self.error = exc
        finally:
            self.source.close()

    def error_text(self) -> Optional[str]:
        if self.error is None:
            return None
        return f"{type(self.error).__name__}: {self.error}"


class _ServiceApplier:
    """Consumer-side applier that drives the service's own ``update``
    path, so streamed batches pay admission, land journal stamps, and
    pin to the owning sharded worker exactly like client updates."""

    def __init__(self, service: "SCCService", request: dict) -> None:
        self.service = service
        self.graph = request["graph"]
        self.scale = request.get("scale")
        self.on_error = request.get("on_error")

    def _request(self, **fields) -> dict:
        req = {"op": "update", "graph": self.graph}
        if self.scale is not None:
            req["scale"] = self.scale
        if self.on_error is not None:
            req["on_error"] = self.on_error
        req.update(fields)
        return req

    def apply_batch(self, inserts, deletes) -> dict:
        return self.service.handle(
            self._request(
                inserts=[list(e) for e in inserts],
                deletes=[list(e) for e in deletes],
            )
        )

    def compact(self) -> dict:
        return self.service.handle(self._request(compact=True))


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------
@contextmanager
def _drain_signals(service: "SCCService", stop: threading.Event):
    """SIGTERM/SIGINT -> drain + stop (main thread only; no-op else)."""
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _drain(signum, frame):
        service.drain()
        stop.set()

    old = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        old[sig] = signal.signal(sig, _drain)
    try:
        yield
    finally:
        for sig, handler in old.items():
            signal.signal(sig, handler)


def _respond(out_stream, lock: threading.Lock, response: dict) -> None:
    line = json.dumps(response, sort_keys=True)
    with lock:
        out_stream.write(line + "\n")
        out_stream.flush()


def serve_stdin(
    service: SCCService,
    *,
    in_stream,
    out_stream,
    max_requests: Optional[int] = None,
    report_path=None,
) -> int:
    """Serve line-delimited JSON requests until EOF/shutdown/SIGTERM.

    ``run`` requests are dispatched to their own thread (admission —
    not the thread count — bounds concurrency; excess sheds typed);
    control requests answer inline.  ``max_requests`` drains after
    dispatching that many run requests (CI smokes).  Returns the
    process exit code.
    """
    lines: "queue.Queue[Optional[str]]" = queue.Queue()

    def _read() -> None:
        try:
            for raw in in_stream:
                lines.put(raw)
        finally:
            lines.put(None)

    threading.Thread(target=_read, daemon=True).start()
    stop = threading.Event()
    out_lock = threading.Lock()
    workers: list = []
    dispatched = 0
    with _drain_signals(service, stop):
        eof = False
        while not eof and not stop.is_set():
            try:
                raw = lines.get(timeout=0.1)
            except queue.Empty:
                continue
            if raw is None:
                eof = True
                break
            raw = raw.strip()
            if not raw:
                continue
            try:
                request = json.loads(raw)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                _respond(
                    out_stream,
                    out_lock,
                    {
                        "ok": False,
                        "error": f"bad request JSON: {exc}",
                        "error_type": "ValueError",
                        "exit_code": 1,
                    },
                )
                continue
            op = request.get("op", "run")
            if op == "shutdown":
                _respond(out_stream, out_lock, service.handle(request))
                stop.set()
                break
            if op != "run":
                _respond(out_stream, out_lock, service.handle(request))
                continue
            t = threading.Thread(
                target=lambda r=request: _respond(
                    out_stream, out_lock, service.handle(r)
                )
            )
            t.start()
            workers.append(t)
            dispatched += 1
            if max_requests is not None and dispatched >= max_requests:
                break
        # Drain.  On a signal/shutdown exit, shed first so queued
        # waiters fail fast and only in-flight work finishes; on a
        # normal exit (EOF, max_requests), let every dispatched
        # request complete before closing admission — those were
        # promised service.  Then anything still buffered on the wire
        # is answered with a typed shed response; when the stream
        # hasn't hit EOF yet, wait briefly for in-transit lines so
        # none go unanswered.
        if stop.is_set():
            service.drain()
        for t in workers:
            t.join()
        workers.clear()
        service.drain()
        while True:
            try:
                raw = (
                    lines.get_nowait()
                    if eof
                    else lines.get(timeout=0.25)
                )
            except queue.Empty:
                break
            if raw is None:
                break
            if not raw.strip():
                continue
            try:
                request = json.loads(raw)
            except ValueError:
                continue
            if request.get("op", "run") == "run":
                _respond(out_stream, out_lock, service.handle(request))
        if report_path is not None:
            service.write_report(report_path)
    return 0


def _read_request_line(
    conn, max_line_bytes: int
) -> Tuple[Optional[bytes], Optional[str]]:
    """Read one newline-terminated request under a byte cap.

    Returns ``(line, None)`` on success and ``(None, reason)`` when
    the client closed early or exceeded the cap.  The per-connection
    ``settimeout`` (set by the caller) bounds every ``recv``, so a
    slow-loris client dribbling bytes forever raises
    ``socket.timeout`` instead of pinning the handler thread.
    """
    buf = bytearray()
    while True:
        chunk = conn.recv(4096)
        if not chunk:
            return None, "client closed before newline"
        buf += chunk
        i = buf.find(b"\n")
        if i >= 0:
            return bytes(buf[: i + 1]), None
        if len(buf) > max_line_bytes:
            return None, (
                f"request line exceeds {max_line_bytes} bytes"
            )


def serve_socket(
    service: SCCService,
    path,
    *,
    max_requests: Optional[int] = None,
    report_path=None,
    read_deadline: float = 30.0,
    max_line_bytes: int = 1 << 20,
) -> int:
    """Serve one JSON request per Unix-socket connection.

    Each connection sends one newline-terminated JSON request and
    receives one JSON response line.  SIGTERM/SIGINT (or a
    ``shutdown`` request) drains exactly like the stdin transport.

    Connections are hardened against hostile or broken clients: a
    client must deliver its newline within ``read_deadline`` seconds
    and ``max_line_bytes`` bytes, or the connection is dropped (a
    typed error is answered for an over-length line) and counted in
    ``transport_errors`` — a slow-loris holding bytes back can pin at
    most one handler thread for one deadline, never the accept loop.
    """
    import os

    path = os.fspath(path)
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass
    stop = threading.Event()
    out_lock = threading.Lock()  # per-connection streams; lock unused
    workers: list = []
    handled = 0
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as server:
        server.bind(path)
        server.listen(16)
        server.settimeout(0.1)
        with _drain_signals(service, stop):
            while not stop.is_set():
                if max_requests is not None and handled >= max_requests:
                    break
                try:
                    conn, _ = server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    # A transient accept failure (EMFILE, a client that
                    # reset mid-handshake) must not kill the loop; only
                    # a drain-time close of the listener ends serving.
                    if stop.is_set():
                        break
                    service.note_transport_error()
                    time.sleep(0.05)
                    continue
                handled += 1

                def _serve_conn(conn=conn) -> None:
                    # Three independently-guarded stages: a client that
                    # disconnects mid-read or mid-response (EPIPE,
                    # ECONNRESET) costs exactly its own request; the
                    # accept loop never sees the failure.
                    with conn:
                        try:
                            conn.settimeout(read_deadline)
                            data, refused = _read_request_line(
                                conn, max_line_bytes
                            )
                        except socket.timeout:
                            # slow-loris: deadline expired before the
                            # newline arrived.  Drop, count, move on.
                            service.note_transport_error()
                            return
                        except OSError:
                            service.note_transport_error()
                            return
                        if data is None:
                            service.note_transport_error()
                            try:
                                conn.sendall(
                                    (
                                        json.dumps(
                                            {
                                                "ok": False,
                                                "error": (
                                                    f"bad request: {refused}"
                                                ),
                                                "error_type": "ValueError",
                                                "exit_code": 1,
                                            },
                                            sort_keys=True,
                                        )
                                        + "\n"
                                    ).encode()
                                )
                            except OSError:
                                pass
                            return
                        try:
                            request = json.loads(data)
                            if not isinstance(request, dict):
                                raise ValueError(
                                    "request must be a JSON object"
                                )
                            response = service.handle(request)
                            if request.get("op") == "shutdown":
                                stop.set()
                        except Exception as exc:
                            response = {
                                "ok": False,
                                "error": f"bad request: {exc}",
                                "error_type": type(exc).__name__,
                                "exit_code": 1,
                            }
                        try:
                            conn.sendall(
                                (
                                    json.dumps(response, sort_keys=True)
                                    + "\n"
                                ).encode()
                            )
                        except OSError:
                            # the response is shed; the work (and its
                            # journal record) already completed.
                            service.note_transport_error()

                t = threading.Thread(target=_serve_conn)
                t.start()
                workers.append(t)
            service.drain()
            for t in workers:
                t.join()
            if report_path is not None:
                service.write_report(report_path)
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass
    return 0
