"""Admission control: bounded intake with load shedding and a memory
cost-model check.

The front door of the hardening stack.  Everything the service accepts
it must eventually pay for in worker time and resident memory, and SCC
workloads are wildly heterogeneous per graph (the paper's Table 1
spans two orders of magnitude), so two independent gates run *before*
any work starts:

* **Queue-depth shedding** — :class:`AdmissionController` tracks how
  many admitted requests are queued or in flight.  Past ``max_queue``
  it refuses with :class:`~repro.errors.ServiceOverloadError` (exit
  17) instead of queueing unboundedly: a saturated service answers
  "retry later" in microseconds rather than timing everyone out.
  :meth:`AdmissionController.drain` flips the same gate permanently
  for graceful shutdown (in-flight work finishes, new work sheds).

* **Cost-model refusal** — when the request's graph size is known (an
  already-warm session, an explicit ``nodes``/``edges`` hint, or an
  edge-list file we can cheaply size), the
  :class:`~repro.runtime.cost.MemoryModel` estimates the run's peak
  bytes; estimates above ``memory_budget_bytes`` are refused with
  :class:`~repro.errors.MemoryBudgetError` (exit 18) — a typed "this
  graph does not fit here" beats an OOM kill halfway through loading.

Admission is a context manager::

    with controller.admit(nodes=n, edges=m, backend="processes"):
        ...   # run; the slot is released on every exit path
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import MemoryBudgetError, ServiceOverloadError
from ..runtime.cost import DEFAULT_MEMORY_MODEL, MemoryModel

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "estimate_edge_list_size",
]

#: rough bytes per text edge-list line ("src dst\n" with ~7-digit ids).
_BYTES_PER_EDGE_LINE = 16.0


def estimate_edge_list_size(path) -> Optional[Tuple[int, int]]:
    """Cheap ``(nodes, edges)`` upper-bound estimate for an edge-list
    file, from its byte size alone (no read).  Gzip files are assumed
    ~4x compressed.  Returns None when the file cannot be stat'ed —
    unknown sizes are admitted and caught later by the RSS governor.
    """
    try:
        size = os.stat(os.fspath(path)).st_size
    except OSError:
        return None
    if str(path).endswith(".gz"):
        size *= 4
    edges = max(1, int(size / _BYTES_PER_EDGE_LINE))
    # Small-world graphs run ~10 edges/node; bounding nodes by edges
    # keeps the estimate conservative for sparse inputs.
    return edges, edges


@dataclass(frozen=True)
class AdmissionConfig:
    """Bounds the admission controller enforces."""

    #: admitted requests allowed to be queued or in flight at once.
    max_queue: int = 16
    #: refuse runs whose estimated peak exceeds this (None = no check).
    memory_budget_bytes: Optional[int] = None
    #: cost model converting graph size into estimated peak bytes.
    memory: MemoryModel = DEFAULT_MEMORY_MODEL

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if (
            self.memory_budget_bytes is not None
            and self.memory_budget_bytes <= 0
        ):
            raise ValueError("memory_budget_bytes must be positive")


class _Ticket:
    """One admitted slot; releases itself on context exit."""

    def __init__(self, controller: "AdmissionController") -> None:
        self._controller = controller
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()

    def __enter__(self) -> "_Ticket":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class AdmissionController:
    """Thread-safe bounded admission with typed refusal.

    All methods are non-blocking: a request is either admitted (slot
    held until the ticket releases) or refused immediately with a
    typed error — the controller never queues callers itself, it
    *counts* them, which is what lets a reader thread shed a burst
    without stalling behind it.
    """

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        *,
        refusal_hook=None,
    ) -> None:
        self.config = config or AdmissionConfig()
        #: optional ``() -> Optional[str]`` asked before every admit;
        #: a non-None reason refuses (the memory governor's veto).
        self.refusal_hook = refusal_hook
        self._lock = threading.Lock()
        self._depth = 0
        self._draining = False
        # stats
        self.admitted = 0
        self.shed = 0
        self.rejected_memory = 0
        self.peak_depth = 0

    # -- gates ----------------------------------------------------------
    def check_memory(
        self,
        *,
        nodes: Optional[int] = None,
        edges: Optional[int] = None,
        backend: str = "serial",
        num_workers: int = 0,
    ) -> None:
        """Refuse (typed) when the estimated run does not fit the
        budget; a no-op when no budget or no size estimate is set."""
        budget = self.config.memory_budget_bytes
        if budget is None or nodes is None or edges is None:
            return
        need = self.config.memory.run_bytes(
            int(nodes),
            int(edges),
            backend=backend,
            num_workers=num_workers,
        )
        if need > budget:
            with self._lock:
                self.rejected_memory += 1
            raise MemoryBudgetError(
                f"graph of {nodes} nodes / {edges} edges exceeds the "
                "admission memory budget",
                required_bytes=int(need),
                budget_bytes=int(budget),
            )

    def admit(
        self,
        *,
        nodes: Optional[int] = None,
        edges: Optional[int] = None,
        backend: str = "serial",
        num_workers: int = 0,
    ) -> _Ticket:
        """Admit one request or raise typed; returns the slot ticket."""
        if self.refusal_hook is not None:
            reason = self.refusal_hook()
            if reason is not None:
                with self._lock:
                    self.shed += 1
                raise ServiceOverloadError(
                    f"request refused: {reason}", reason="governor"
                )
        self.check_memory(
            nodes=nodes,
            edges=edges,
            backend=backend,
            num_workers=num_workers,
        )
        with self._lock:
            if self._draining:
                self.shed += 1
                raise ServiceOverloadError(
                    "service is draining; request shed",
                    reason="draining",
                )
            if self._depth >= self.config.max_queue:
                self.shed += 1
                raise ServiceOverloadError(
                    f"request queue full ({self._depth} in flight); "
                    "request shed",
                    reason="overload",
                )
            self._depth += 1
            self.admitted += 1
            self.peak_depth = max(self.peak_depth, self._depth)
        return _Ticket(self)

    def _release(self) -> None:
        with self._lock:
            self._depth -= 1

    # -- lifecycle / introspection --------------------------------------
    def drain(self) -> None:
        """Stop admitting permanently (graceful-shutdown gate)."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def depth(self) -> int:
        """Admitted requests currently queued or in flight."""
        return self._depth

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "depth": self._depth,
                "max_queue": self.config.max_queue,
                "draining": self._draining,
                "admitted": self.admitted,
                "shed": self.shed,
                "rejected_memory": self.rejected_memory,
                "peak_depth": self.peak_depth,
            }
