"""RSS memory governor: measure real memory, evict warm state under
pressure, refuse admission before the OOM killer arrives.

The admission cost model (:mod:`repro.service.govern`) is an a-priori
*estimate*; this module closes the loop with the ground truth — the
process's resident set, sampled from ``/proc/self/statm`` (falling
back to ``resource.getrusage``, which reports the peak rather than the
current RSS but still bounds the damage on non-Linux POSIX).

Two thresholds, two behaviours:

* above ``soft_limit_bytes`` the governor **relieves pressure**: it
  walks the engine's sessions from least- to most-recently used,
  first releasing warm worker pools (cheap to rebuild — the graph and
  mirror stay cached), then evicting whole sessions down to
  ``min_sessions``, until the estimated released bytes cover the
  overshoot.  Eviction trades warm-run latency for survival, exactly
  the right direction under pressure;
* above ``hard_limit_bytes`` — after relieving — it **refuses
  admission** (:meth:`MemoryGovernor.refusal`, wired into the
  admission controller's ``refusal_hook``): a typed
  :class:`~repro.errors.ServiceOverloadError` beats an OOM kill of
  every in-flight request.

``rss_fn`` and the clock are injectable so tests drive the governor
with synthetic pressure instead of real multi-GB allocations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..ioutil import process_rss_bytes

__all__ = ["rss_bytes", "GovernorConfig", "MemoryGovernor"]


def rss_bytes(
    pid: Optional[int] = None, *, statm_path: Optional[str] = None
) -> int:
    """Current resident-set size of a process, in bytes.

    Prefers ``/proc/<pid>/statm`` (instantaneous, Linux; see
    :func:`repro.ioutil.process_rss_bytes`); for the calling process it
    falls back to ``resource.getrusage`` (``ru_maxrss``, the lifetime
    *peak*, in KiB on Linux/BSD) and finally 0 where neither exists —
    never raises.  ``statm_path`` overrides the proc file so tests can
    fake both the present and the absent path.
    """
    rss = process_rss_bytes(pid, statm_path=statm_path)
    if rss is not None:
        return rss
    if pid is not None:
        # getrusage only knows about *this* process (and its reaped
        # children in aggregate); no fallback for arbitrary pids.
        return 0
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - exotic platforms only
        return 0


@dataclass(frozen=True)
class GovernorConfig:
    """Thresholds the memory governor enforces."""

    #: start evicting warm state above this RSS (None = never).
    soft_limit_bytes: Optional[int] = None
    #: refuse admission above this RSS (None = never refuse).
    hard_limit_bytes: Optional[int] = None
    #: sessions the governor will not evict below (keep some warmth).
    min_sessions: int = 0
    #: minimum seconds between RSS samples (0 = sample every check).
    sample_interval: float = 0.0

    def __post_init__(self) -> None:
        if (
            self.soft_limit_bytes is not None
            and self.hard_limit_bytes is not None
            and self.hard_limit_bytes < self.soft_limit_bytes
        ):
            raise ValueError("hard limit must be >= soft limit")
        if self.min_sessions < 0:
            raise ValueError("min_sessions must be >= 0")


class MemoryGovernor:
    """Holds an :class:`~repro.engine.Engine` to its memory budget."""

    def __init__(
        self,
        engine,
        config: Optional[GovernorConfig] = None,
        *,
        rss_fn: Callable[[], int] = rss_bytes,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.engine = engine
        self.config = config or GovernorConfig()
        self._rss_fn = rss_fn
        self._clock = clock
        self._last_sample = 0.0
        self._last_rss = 0
        # stats
        self.samples = 0
        self.pools_released = 0
        self.sessions_evicted = 0
        self.refusals = 0
        self.peak_rss = 0

    # -- sampling -------------------------------------------------------
    def sample(self, *, force: bool = False) -> int:
        """The (rate-limited) current RSS in bytes."""
        now = self._clock()
        if (
            force
            or self.samples == 0
            or now - self._last_sample >= self.config.sample_interval
        ):
            self._last_rss = self._rss_fn()
            self._last_sample = now
            self.samples += 1
            self.peak_rss = max(self.peak_rss, self._last_rss)
        return self._last_rss

    # -- pressure relief ------------------------------------------------
    def relieve(self) -> int:
        """Evict warm state until the soft-limit overshoot is covered.

        Returns the *estimated* bytes released.  Eviction order is
        deliberate: condemn warm pools first (cheapest to rebuild,
        biggest off-heap footprint per byte of lost warmth), then whole
        LRU sessions, never dropping below ``min_sessions``.  Estimates
        — not a re-sampled RSS — drive the loop, because a Python
        process rarely returns freed pages to the OS immediately; the
        goal is to stop *pinning* memory, which is what lets the next
        allocation reuse it.
        """
        soft = self.config.soft_limit_bytes
        if soft is None:
            return 0
        overshoot = self.sample(force=True) - soft
        if overshoot <= 0:
            return 0
        released = 0
        # Pass 1: warm pools, LRU first.
        for sess in self.engine.sessions:
            if released >= overshoot:
                break
            pool = sess.pool
            if pool is not None and sess.release_pool():
                from ..runtime.cost import DEFAULT_MEMORY_MODEL as mm

                released += int(mm.worker_bytes * pool.num_workers)
                self.pools_released += 1
        # Pass 2: whole sessions, LRU first, keeping min_sessions warm.
        while (
            released < overshoot
            and len(self.engine.sessions) > self.config.min_sessions
        ):
            victim = self.engine.sessions[0]
            released += victim.estimated_bytes()
            self.sessions_evicted += self.engine.evict_lru(1)
        return released

    # -- admission veto -------------------------------------------------
    def refusal(self) -> Optional[str]:
        """Why admission should be refused right now, or None.

        Wired into :class:`~repro.service.govern.AdmissionController`
        as its ``refusal_hook``; relieves pressure first so a refusal
        means "over the hard limit *even after* shedding warm state".
        """
        hard = self.config.hard_limit_bytes
        if hard is None:
            return None
        rss = self.sample()
        if rss <= hard:
            return None
        self.relieve()
        rss = self.sample(force=True)
        if rss <= hard:
            return None
        self.refusals += 1
        return (
            f"resident memory {rss / 1e6:.0f} MB exceeds the "
            f"{hard / 1e6:.0f} MB hard limit"
        )

    def to_dict(self) -> dict:
        return {
            "rss_bytes": self._last_rss,
            "peak_rss_bytes": self.peak_rss,
            "samples": self.samples,
            "pools_released": self.pools_released,
            "sessions_evicted": self.sessions_evicted,
            "refusals": self.refusals,
            "soft_limit_bytes": self.config.soft_limit_bytes,
            "hard_limit_bytes": self.config.hard_limit_bytes,
        }
