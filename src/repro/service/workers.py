"""The sharded serving tier: supervised engine workers behind one front.

``repro serve --workers N`` turns the single-engine turnstile into a
fleet: the front process keeps the whole hardening stack (admission,
cost gate, retry, breakers, governor, journal) and routes each admitted
request over a pipe to one of ``N`` forked engine workers, each running
its own :class:`~repro.service.server.SCCService` over its own
:class:`~repro.engine.Engine` (own warm sessions, own pools, its slice
of the memory budget).

Three cooperating mechanisms, mirroring the task-level supervision the
runtime layer already proved (``runtime/supervisor.py``):

* **Routing** — :func:`routing_fingerprint` hashes the request's graph
  identity (the same key the engine's session-source cache uses) onto
  a :class:`HashRing` of worker slots, so repeat requests for a graph
  land on the worker whose session is already warm.  Hot graphs
  replicate: past ``hot_threshold`` hits a key becomes eligible for up
  to ``hot_replicas`` consecutive ring slots, and dispatch prefers an
  idle replica — affinity when it's free, throughput when it's not.
  *Mutable* graphs (ones that have taken an ``update``) are the
  exception: they route by a seed-less token
  (:func:`mutable_route_token`), never replicate, and pin every later
  request to the one worker owning the delta state; after that worker
  dies, the supervisor streams the token's committed update history
  into the respawn ahead of the next request, so the rebuilt session
  converges to the exact pre-crash state (updates are idempotent).

* **Supervision** — the pump thread watches every worker: process
  death (SIGKILL, OOM) is caught by ``Process.is_alive``; a wedged
  worker is caught by stale heartbeats (idle) or by an in-flight
  request overrunning its deadline plus ``hang_grace`` (busy), and is
  SIGKILLed.  Dead workers respawn in place (same ring slot, same
  affinity) with bounded exponential backoff; a worker that exhausts
  ``max_worker_restarts`` is *lost* and its session budget is
  rebalanced onto the survivors
  (:meth:`~repro.engine.Engine.set_max_sessions`).

* **Replay** — every in-flight request a dead worker was carrying is
  re-driven onto a survivor (journaled as ``replayed``); results are
  deterministic, so the replayed response carries the same canonical
  ``labels_crc32`` the original would have.  A request that burns
  ``max_replays`` — or for which no live worker remains — fails typed
  with :class:`~repro.errors.WorkerLostError` (exit 19), which the
  front's retry layer classifies *transient*: by the time the client
  retries, a respawned worker is usually back.

The tier degrades to the in-process single-engine path when ``N <= 1``,
when ``fork`` is unavailable, or at runtime when the whole fleet is
lost — the front's local engine is the floor, exactly like ``serial``
is the breaker ladder's floor.
"""

from __future__ import annotations

import bisect
import multiprocessing as mp
import os
import signal
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import ServiceOverloadError, WorkerLostError
from ..ioutil import process_rss_bytes
from .journal import RequestJournal

__all__ = [
    "WorkerTierConfig",
    "HashRing",
    "routing_fingerprint",
    "mutable_route_token",
    "RemoteRequestError",
    "WorkerSupervisor",
]

#: request keys that define which graph (and thus which warm session)
#: a run request needs — the consistent-hashing routing identity.
_ROUTE_KEYS = ("graph", "scale", "seed", "on_error")

#: the slice of the routing identity that names a *mutable* session.
#: ``seed`` is deliberately absent: every request against a mutated
#: graph must land on the one worker holding its delta state, whatever
#: seed the run asks for.
_MUTABLE_KEYS = ("graph", "scale", "on_error")


def routing_fingerprint(request: dict) -> int:
    """Stable CRC32 of a request's graph identity.

    Two requests with equal fingerprints hit the same warm
    :class:`~repro.engine.session.GraphSession` when routed to the
    same worker — the affinity the hash ring preserves.
    """
    token = "|".join(repr(request.get(k)) for k in _ROUTE_KEYS)
    return zlib.crc32(token.encode("utf-8")) & 0xFFFFFFFF


def mutable_route_token(request: dict) -> str:
    """The pinning identity of a (potentially) mutable session.

    Once a graph has taken an ``update``, every later request for it —
    update *or* run — must be served by the worker that owns the
    mutated session; this token is the key the supervisor pins by and
    keeps the update history under for post-crash replay.
    """
    return "|".join(repr(request.get(k)) for k in _MUTABLE_KEYS)


class HashRing:
    """Consistent hashing over worker *slots* (indices, not processes).

    Slots are stable across respawns — a worker that dies and comes
    back owns the same arc of the ring, so its replacement re-warms
    exactly the graphs it used to serve.  ``virtual_nodes`` smooths the
    load split across few slots.
    """

    def __init__(self, slots: int, *, virtual_nodes: int = 64) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.slots = slots
        points = sorted(
            (
                zlib.crc32(f"slot-{slot}#{v}".encode()) & 0xFFFFFFFF,
                slot,
            )
            for slot in range(slots)
            for v in range(virtual_nodes)
        )
        self._hashes = [h for h, _ in points]
        self._slots = [s for _, s in points]

    def lookup(self, key_hash: int, count: int = 1) -> List[int]:
        """The first ``count`` *distinct* slots clockwise of the key.

        Element 0 is the primary owner; the rest are the replica
        candidates hot keys may spill onto.
        """
        count = min(max(1, count), self.slots)
        start = bisect.bisect_left(self._hashes, key_hash & 0xFFFFFFFF)
        result: List[int] = []
        n = len(self._slots)
        for i in range(n):
            slot = self._slots[(start + i) % n]
            if slot not in result:
                result.append(slot)
                if len(result) == count:
                    break
        return result


@dataclass(frozen=True)
class WorkerTierConfig:
    """Supervision and routing knobs of the sharded tier."""

    num_workers: int = 2
    #: seconds between worker heartbeats.
    heartbeat_interval: float = 0.5
    #: missed beats before an *idle* worker is declared wedged.
    heartbeat_misses: int = 8
    #: respawns allowed per worker slot before it is lost for good.
    max_worker_restarts: int = 3
    #: base respawn backoff, doubled per restart (capped at 2 s).
    restart_backoff: float = 0.1
    #: grace beyond a request's deadline before its worker is killed.
    hang_grace: float = 2.0
    #: replays allowed per request before it fails typed.
    max_replays: int = 2
    #: max workers a hot graph may replicate onto.
    hot_replicas: int = 3
    #: hits on one routing key before replication widens (0 = never).
    hot_threshold: int = 4
    #: virtual nodes per slot on the hash ring.
    virtual_nodes: int = 64

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be >= 0")
        if self.max_replays < 0:
            raise ValueError("max_replays must be >= 0")
        if self.hot_replicas < 1:
            raise ValueError("hot_replicas must be >= 1")


class RemoteRequestError(RuntimeError):
    """A worker answered ``ok: false``; carries the typed payload.

    The front re-raises the worker's failure so its retry policy and
    breakers see the same taxonomy they would in-process: the exit
    code is the worker's, and ``transient_hint`` feeds
    :func:`~repro.service.retry.classify_failure` the worker-side
    verdict (the class of the original exception does not survive the
    pipe, its classification does).

    Deliberately *not* a :class:`~repro.errors.ReproError`: its exit
    code is whatever the worker relayed, which would break the
    taxonomy's one-class-one-code contract — and it never crosses the
    CLI boundary, because ``_error_response`` unwraps the original
    class name and code from :attr:`response`.
    """

    def __init__(self, response: dict) -> None:
        self.response = response
        self.exit_code = int(response.get("exit_code", 10))
        self.error_type = response.get("error_type", "Exception")
        self.transient_hint = bool(response.get("transient", False))
        super().__init__(
            f"{self.error_type}: "
            f"{response.get('error', 'worker request failed')}"
        )


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------
def _worker_main(conn, index: int, config, tier: WorkerTierConfig) -> None:
    """One engine worker: requests in, responses + heartbeats out.

    Runs in a forked child.  SIGTERM/SIGINT are ignored — drain is the
    front's job, coordinated over the pipe — and the worker exits when
    the front says ``stop`` or the pipe dies.
    """
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from .server import SCCService

    send_lock = threading.Lock()

    def send(msg: dict) -> bool:
        try:
            with send_lock:
                conn.send(msg)
            return True
        except (OSError, ValueError):
            return False

    stop_beat = threading.Event()

    def beat() -> None:
        while not stop_beat.wait(tier.heartbeat_interval):
            if not send({"kind": "beat", "pid": os.getpid()}):
                return

    service = SCCService(config)
    threading.Thread(target=beat, daemon=True).start()
    send({"kind": "ready", "pid": os.getpid()})
    try:
        while True:
            if not conn.poll(0.2):
                continue
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # front died; nothing left to serve
            kind = msg.get("kind")
            if kind == "request":
                response = service.handle(msg["request"])
                response["worker"] = index
                if not send(
                    {
                        "kind": "response",
                        "seq": msg["seq"],
                        "response": response,
                    }
                ):
                    break
            elif kind == "replay":
                # Re-drive a mutable session's committed update history
                # into this (freshly respawned) worker before the
                # request queued behind this message runs.  Updates are
                # idempotent, so replay converges to the exact state
                # the dead worker held; responses are not sent — the
                # originals were already answered.
                for req in msg.get("requests", ()):
                    try:
                        service.handle(req)
                    except Exception:
                        pass
            elif kind == "stats":
                send(
                    {
                        "kind": "stats",
                        "token": msg.get("token"),
                        "stats": service.stats(),
                    }
                )
            elif kind == "rebalance":
                try:
                    service.engine.set_max_sessions(
                        int(msg["max_sessions"])
                    )
                except (KeyError, ValueError, TypeError):
                    pass
            elif kind == "stop":
                break
    finally:
        stop_beat.set()
        try:
            service.close()
        except Exception:
            pass
        try:
            conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Front-side bookkeeping
# ---------------------------------------------------------------------------
class _WorkerHandle:
    """Front-side state of one worker slot."""

    __slots__ = (
        "index",
        "proc",
        "conn",
        "send_lock",
        "state",
        "busy",
        "last_beat",
        "restarts",
        "next_respawn_at",
        "dispatched",
        "completed",
        "last_stats",
        "stats_token",
        "mutable_applied",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc = None
        self.conn = None
        self.send_lock = threading.Lock()
        #: starting -> live -> down (awaiting respawn) -> lost
        self.state = "down"
        self.busy: List[int] = []  # in-flight seqs, dispatch order
        self.last_beat = 0.0
        self.restarts = 0
        self.next_respawn_at = 0.0
        self.dispatched = 0
        self.completed = 0
        self.last_stats: Optional[dict] = None
        self.stats_token = -1
        #: token -> how many committed update-history entries this
        #: incarnation of the worker has seen (replayed or applied
        #: live); reset on respawn.  A length, not a flag, so a worker
        #: that inherits a pinned token mid-stream (lost slot fallback)
        #: only replays the tail it missed.
        self.mutable_applied: Dict[str, int] = {}

    @property
    def routable(self) -> bool:
        return self.state in ("starting", "live")

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None


class _InFlight:
    """One dispatched request the front is waiting on."""

    __slots__ = (
        "seq",
        "request",
        "budget",
        "route_key",
        "backend",
        "event",
        "response",
        "error",
        "worker",
        "dispatched_at",
        "deadline_at",
        "replays",
        "mutable_token",
    )

    def __init__(self, seq, request, budget, route_key, backend) -> None:
        self.seq = seq
        self.request = request
        self.budget = budget
        self.route_key = route_key
        self.backend = backend
        self.event = threading.Event()
        self.response: Optional[dict] = None
        self.error: Optional[BaseException] = None
        self.worker: Optional[int] = None
        self.dispatched_at = 0.0
        self.deadline_at: Optional[float] = None
        self.replays = 0
        #: set when this request must pin to a mutable session's owner.
        self.mutable_token: Optional[str] = None

    def fail(self, exc: BaseException) -> None:
        if not self.event.is_set():
            self.error = exc
            self.event.set()

    def succeed(self, response: dict) -> None:
        if not self.event.is_set():
            self.response = response
            self.event.set()


class WorkerSupervisor:
    """Forks, routes to, watches, respawns and drains the worker fleet.

    ``worker_config`` is the (already budget-sharded)
    :class:`~repro.service.server.ServiceConfig` each worker builds its
    own service from; it is treated as opaque here beyond
    ``max_sessions`` (rebalanced when a slot is lost).
    ``on_worker_failure(backend, worker)`` fires once per in-flight
    request a dying worker was carrying — the front wires it into its
    :class:`~repro.service.retry.BackendBreakers` so worker death
    degrades traffic down the same ladder every other infra failure
    does.
    """

    def __init__(
        self,
        worker_config,
        tier: Optional[WorkerTierConfig] = None,
        *,
        journal: Optional[RequestJournal] = None,
        on_worker_failure: Optional[Callable[[str, int], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        from ..engine.pool import fork_available

        if not fork_available():  # pragma: no cover - non-POSIX only
            raise RuntimeError(
                "the sharded serving tier requires the 'fork' "
                "start method"
            )
        self.tier = tier or WorkerTierConfig()
        self.worker_config = worker_config
        self.journal = journal
        self.on_worker_failure = on_worker_failure
        self._clock = clock
        self._ctx = mp.get_context("fork")
        self.ring = HashRing(
            self.tier.num_workers,
            virtual_nodes=self.tier.virtual_nodes,
        )
        self._handles = [
            _WorkerHandle(i) for i in range(self.tier.num_workers)
        ]
        self._lock = threading.Lock()
        self._inflight: Dict[int, _InFlight] = {}
        self._key_hits: Dict[int, int] = {}
        #: tokens of graphs that have taken at least one update — every
        #: later request for them pins (no replicas) to one worker.
        self._mutable_keys: set = set()
        #: token -> committed update requests in dispatch order; what a
        #: respawned worker replays before serving the token again.
        self._update_history: Dict[str, List[dict]] = {}
        self._pump: Optional[threading.Thread] = None
        self._stop_pump = threading.Event()
        self._stats_token = 0
        self._started = False
        self._draining = False
        # stats
        self.deaths = 0
        self.respawns = 0
        self.replays = 0
        self.hang_kills = 0
        self.lost_workers = 0

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "WorkerSupervisor":
        if self._started:
            return self
        self._stop_pump.clear()
        self._draining = False
        for handle in self._handles:
            self._spawn(handle)
        self._pump = threading.Thread(
            target=self._pump_loop, daemon=True, name="worker-pump"
        )
        self._started = True
        self._pump.start()
        return self

    def _spawn(self, handle: _WorkerHandle) -> None:
        """Fork one worker into ``handle``'s slot.

        Called WITHOUT the supervisor lock held (initial start is
        single-threaded; respawns release it first): a fork taken
        while other front threads hold locks hands the child copies
        of held locks, and a child wedged before its first message is
        a silent black hole.  ``state`` flips to routable *last* so a
        concurrent dispatch never sees a half-initialized slot.
        """
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                handle.index,
                self.worker_config,
                self.tier,
            ),
            daemon=True,
            name=f"repro-serve-worker-{handle.index}",
        )
        proc.start()
        child_conn.close()
        handle.proc = proc
        handle.conn = parent_conn
        handle.last_beat = self._clock()
        handle.mutable_applied = {}  # fresh engine: no delta state
        handle.state = "starting"

    @property
    def available(self) -> bool:
        """True while at least one worker is routable or coming back."""
        if not self._started or self._draining:
            return self._started and not self._draining and False
        return any(h.state != "lost" for h in self._handles)

    @property
    def live_workers(self) -> int:
        return sum(1 for h in self._handles if h.routable)

    def begin_drain(self) -> None:
        """Phase 1 of the drain: refuse new dispatches.

        Requests already on a worker (or queued in its pipe) are
        promised service and keep running; :meth:`stop` waits for
        them.
        """
        self._draining = True

    def stop(self, *, drain_timeout: float = 60.0) -> None:
        """Phase 2: drain in-flight work, snapshot stats, stop the fleet.

        In-flight requests get ``drain_timeout`` seconds to finish;
        overrun ones are shed typed (the journal then records them as
        shed, keeping the accepted = completed + shed balance).  Worker
        stats are collected *before* the processes die so the final
        merged report sees the whole fleet.
        """
        if not self._started:
            return
        self.begin_drain()
        deadline = self._clock() + drain_timeout
        while self._clock() < deadline:
            with self._lock:
                if not self._inflight:
                    break
            time.sleep(0.02)
        with self._lock:
            for entry in list(self._inflight.values()):
                entry.fail(
                    ServiceOverloadError(
                        "drain timeout; in-flight request shed",
                        reason="draining",
                    )
                )
        try:
            self.collect_stats(timeout=2.0)
        except Exception:
            pass
        # The pump dies FIRST.  If it outlived the kills below it
        # would read each clean worker exit as a death and respawn a
        # fresh worker nobody will ever stop — a leaked process that,
        # forked while another thread is mid-``subprocess.Popen``,
        # inherits that child's pipe ends and wedges its reader
        # forever (fork ignores CLOEXEC).
        self._stop_pump.set()
        if self._pump is not None:
            self._pump.join(timeout=2.0)
        for handle in self._handles:
            if handle.routable:
                self._send(handle, {"kind": "stop"})
        for handle in self._handles:
            proc = handle.proc
            if proc is None:
                continue
            proc.join(timeout=3.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - stubborn worker
                proc.kill()
                proc.join(timeout=1.0)
        for handle in self._handles:
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:
                    pass
                handle.conn = None
            handle.state = "down"
        self._started = False

    # -- request path ---------------------------------------------------
    def execute(
        self, request: dict, seq: int, *, budget: Optional[float] = None
    ) -> dict:
        """Dispatch one request and block until its response (or typed
        failure).  Safe to call from many front threads at once."""
        if not self._started:
            raise WorkerLostError("worker tier is not running")
        if self._draining:
            raise ServiceOverloadError(
                "service draining; request shed before dispatch",
                reason="draining",
            )
        token = mutable_route_token(request)
        is_update = request.get("op") == "update"
        with self._lock:
            if is_update:
                self._mutable_keys.add(token)
            pinned = token in self._mutable_keys
        # A mutated graph's requests route by the seed-less mutable
        # token — one owner, no replicas — so runs and updates alike
        # always see the worker holding the delta state.
        key = (
            zlib.crc32(token.encode("utf-8")) & 0xFFFFFFFF
            if pinned
            else routing_fingerprint(request)
        )
        entry = _InFlight(
            seq,
            request,
            budget,
            key,
            request.get("backend", "serial"),
        )
        if pinned:
            entry.mutable_token = token
        with self._lock:
            self._key_hits[key] = self._key_hits.get(key, 0) + 1
            self._inflight[seq] = entry
            try:
                self._dispatch_locked(entry)
            except BaseException:
                self._inflight.pop(seq, None)
                raise
        try:
            while not entry.event.wait(0.2):
                if self._pump is None or not self._pump.is_alive():
                    raise WorkerLostError(
                        "worker supervisor pump died"
                    )
        finally:
            with self._lock:
                self._inflight.pop(seq, None)
        if entry.error is not None:
            raise entry.error
        response = dict(entry.response or {})
        response.setdefault("worker", entry.worker)
        response["replays"] = entry.replays
        return response

    def _replicas_for(self, key: int) -> int:
        if self.tier.hot_threshold <= 0:
            return 1
        hits = self._key_hits.get(key, 0)
        return 1 + min(
            self.tier.hot_replicas - 1,
            hits // self.tier.hot_threshold,
        )

    def _dispatch_locked(
        self, entry: _InFlight, *, replay_reason: Optional[str] = None
    ) -> None:
        """Pick a worker for ``entry`` and send it (lock held)."""
        # mutable sessions never replicate: exactly one worker owns
        # the delta state, hot or not.
        replicas = (
            1
            if entry.mutable_token is not None
            else self._replicas_for(entry.route_key)
        )
        candidates = self.ring.lookup(entry.route_key, replicas)
        routable = [
            self._handles[slot]
            for slot in candidates
            if self._handles[slot].routable
        ]
        if not routable:
            # Affinity lost with the owners; any live worker beats a
            # dropped request (it just pays a cold session load).
            routable = [h for h in self._handles if h.routable]
        if not routable:
            raise WorkerLostError(
                "no live serving worker to dispatch onto"
            )
        # Prefer idle workers in candidate (affinity) order, live
        # before still-starting; fall back to the least-loaded.  A
        # worker that proved it serves beats one that only forked.
        rank = lambda h: 0 if h.state == "live" else 1  # noqa: E731
        idle = sorted(
            (h for h in routable if not h.busy), key=rank
        )
        handle = idle[0] if idle else min(
            routable, key=lambda h: (len(h.busy), rank(h))
        )
        handle.busy.append(entry.seq)
        handle.dispatched += 1
        entry.worker = handle.index
        entry.dispatched_at = self._clock()
        entry.deadline_at = (
            entry.dispatched_at + entry.budget + self.tier.hang_grace
            if entry.budget is not None
            else None
        )
        token = entry.mutable_token
        if token is not None:
            # This incarnation of the worker may be missing part of the
            # token's committed update history (fresh fork, respawn
            # after a crash, or a lost-slot fallback): queue the unseen
            # tail ahead of the request.  The pipe is FIFO and the
            # worker loop is serial, so replay finishes before the
            # request runs; idempotent updates make re-application
            # convergent.
            history = self._update_history.get(token, [])
            seen = handle.mutable_applied.get(token, 0)
            if seen < len(history) and not self._send(
                handle, {"kind": "replay", "requests": history[seen:]}
            ):
                self._handle_death_locked(handle, "send-failed")
                return
            handle.mutable_applied[token] = len(history)
        if not self._send(
            handle,
            {
                "kind": "request",
                "seq": entry.seq,
                "request": entry.request,
            },
        ):
            # the pipe died under us: treat as a worker death, which
            # replays this entry (and its siblings) onto a survivor.
            self._handle_death_locked(handle, "send-failed")
            return
        if (
            token is not None
            and entry.request.get("op") == "update"
            and replay_reason is None
        ):
            # record in dispatch order (= pipe order = worker execution
            # order); re-dispatches of the same entry skip the append,
            # and the serving worker counts the entry as seen (it is
            # about to apply it as the request itself).
            self._update_history.setdefault(token, []).append(
                dict(entry.request)
            )
            handle.mutable_applied[token] = len(
                self._update_history[token]
            )
        if self.journal is not None:
            if replay_reason is not None:
                self.journal.replayed(
                    entry.seq, handle.index, reason=replay_reason
                )
            else:
                self.journal.dispatched(entry.seq, handle.index)

    def _send(self, handle: _WorkerHandle, msg: dict) -> bool:
        if handle.conn is None:
            return False
        try:
            with handle.send_lock:
                handle.conn.send(msg)
            return True
        except (OSError, ValueError):
            return False

    # -- supervision (pump thread) --------------------------------------
    def _pump_loop(self) -> None:
        from multiprocessing.connection import wait as conn_wait

        tick = min(0.1, self.tier.heartbeat_interval / 2)
        while not self._stop_pump.is_set():
            with self._lock:
                conns = {
                    h.conn: h
                    for h in self._handles
                    if h.routable and h.conn is not None
                }
            try:
                ready = (
                    conn_wait(list(conns), timeout=tick)
                    if conns
                    else []
                )
            except OSError:
                ready = []
            if not conns:
                time.sleep(tick)
            for conn in ready:
                handle = conns[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    with self._lock:
                        self._handle_death_locked(
                            handle, "pipe-closed"
                        )
                    continue
                self._on_message(handle, msg)
            with self._lock:
                self._check_liveness_locked()
            self._respawn_due()

    def _on_message(self, handle: _WorkerHandle, msg: dict) -> None:
        kind = msg.get("kind")
        with self._lock:
            handle.last_beat = self._clock()
            if handle.state == "starting":
                handle.state = "live"
            if kind == "response":
                seq = msg.get("seq")
                if seq in handle.busy:
                    handle.busy.remove(seq)
                handle.completed += 1
                entry = self._inflight.get(seq)
                if entry is not None and entry.worker == handle.index:
                    entry.succeed(msg.get("response") or {})
            elif kind == "stats":
                handle.last_stats = msg.get("stats")
                token = msg.get("token")
                if isinstance(token, int):
                    handle.stats_token = token
            # "beat"/"ready" carry nothing beyond the timestamp.

    def _check_liveness_locked(self) -> None:
        now = self._clock()
        stale_after = (
            self.tier.heartbeat_interval * self.tier.heartbeat_misses
        )
        for handle in self._handles:
            if not handle.routable:
                continue
            proc = handle.proc
            if proc is not None and not proc.is_alive():
                self._handle_death_locked(handle, "worker-died")
                continue
            beat_age = now - handle.last_beat
            overdue = any(
                (e := self._inflight.get(seq)) is not None
                and e.deadline_at is not None
                and now >= e.deadline_at
                for seq in handle.busy
            )
            # A worker that never said "ready" is a wedged fork (a
            # lock inherited mid-acquire, a poisoned allocator): it
            # sends *nothing*, so stale silence condemns it even while
            # it nominally carries replayed requests.
            stuck_starting = (
                handle.state == "starting" and beat_age > stale_after
            )
            if (
                overdue
                or stuck_starting
                or (not handle.busy and beat_age > stale_after)
            ):
                # wedged: busy past deadline+grace, silent since fork,
                # or idle yet silent.
                self.hang_kills += 1
                try:
                    os.kill(proc.pid, signal.SIGKILL)
                except (OSError, TypeError):
                    pass
                proc.join(timeout=1.0)
                self._handle_death_locked(handle, "worker-hung")

    def _handle_death_locked(
        self, handle: _WorkerHandle, reason: str
    ) -> None:
        if not handle.routable:
            return
        self.deaths += 1
        handle.state = "down"
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None
        if handle.proc is not None:
            handle.proc.join(timeout=0.5)
        orphans = list(handle.busy)
        handle.busy.clear()
        if handle.restarts >= self.tier.max_worker_restarts:
            handle.state = "lost"
            self.lost_workers += 1
            self._rebalance_locked()
        else:
            backoff = min(
                2.0,
                self.tier.restart_backoff * (2 ** handle.restarts),
            )
            handle.next_respawn_at = self._clock() + backoff
        now = self._clock()
        for seq in orphans:
            entry = self._inflight.get(seq)
            if entry is None or entry.event.is_set():
                continue
            if self.on_worker_failure is not None:
                try:
                    self.on_worker_failure(entry.backend, handle.index)
                except Exception:
                    pass
            entry.replays += 1
            self.replays += 1
            if entry.deadline_at is not None and now >= entry.deadline_at:
                from ..errors import PhaseTimeoutError

                entry.fail(
                    PhaseTimeoutError("request", entry.budget or 0.0)
                )
            elif entry.replays > self.tier.max_replays:
                entry.fail(
                    WorkerLostError(
                        "request exhausted its replay budget",
                        worker=handle.index,
                    )
                )
            else:
                try:
                    self._dispatch_locked(entry, replay_reason=reason)
                except WorkerLostError as exc:
                    entry.fail(exc)

    def _respawn_due(self) -> None:
        """Respawn slots whose backoff has elapsed (pump thread).

        The due-check runs under the lock but the forks themselves do
        not — see :meth:`_spawn` on why forking while holding the
        supervisor lock is a deadlock seed.
        """
        with self._lock:
            now = self._clock()
            due = [
                h
                for h in self._handles
                if h.state == "down"
                and self._started
                and not self._stop_pump.is_set()
                and now >= h.next_respawn_at
            ]
            for handle in due:
                handle.restarts += 1
                self.respawns += 1
        for handle in due:
            if self._stop_pump.is_set():
                break
            self._spawn(handle)

    def _rebalance_locked(self) -> None:
        """Spread a lost slot's session budget over the survivors."""
        per_worker = getattr(self.worker_config, "max_sessions", None)
        if not per_worker:
            return
        survivors = [
            h for h in self._handles if h.state != "lost"
        ]
        if not survivors:
            return
        total = per_worker * self.tier.num_workers
        share = max(1, total // len(survivors))
        for handle in survivors:
            if handle.routable:
                self._send(
                    handle,
                    {"kind": "rebalance", "max_sessions": share},
                )

    # -- introspection --------------------------------------------------
    def collect_stats(self, timeout: float = 2.0) -> None:
        """Ask every live worker for a fresh stats snapshot (cached on
        each handle; merged by :meth:`to_dict`)."""
        with self._lock:
            self._stats_token += 1
            token = self._stats_token
            targets = [h for h in self._handles if h.routable]
            for handle in targets:
                self._send(handle, {"kind": "stats", "token": token})
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if all(
                    h.stats_token >= token or not h.routable
                    for h in targets
                ):
                    return
            time.sleep(0.02)

    def to_dict(self) -> dict:
        with self._lock:
            workers = {}
            now = self._clock()
            for h in self._handles:
                alive = h.proc is not None and h.proc.is_alive()
                workers[str(h.index)] = {
                    "state": h.state,
                    "pid": h.pid,
                    "restarts": h.restarts,
                    "dispatched": h.dispatched,
                    "completed": h.completed,
                    "in_flight": len(h.busy),
                    "beat_age_seconds": (
                        now - h.last_beat if h.routable else None
                    ),
                    "rss_bytes": (
                        process_rss_bytes(h.pid) if alive else None
                    ),
                    "stats": h.last_stats,
                }
            return {
                "num_workers": self.tier.num_workers,
                "live_workers": self.live_workers,
                "draining": self._draining,
                "deaths": self.deaths,
                "respawns": self.respawns,
                "replays": self.replays,
                "hang_kills": self.hang_kills,
                "lost_workers": self.lost_workers,
                "in_flight": len(self._inflight),
                "routed_keys": len(self._key_hits),
                "mutable_keys": len(self._mutable_keys),
                "update_history_entries": sum(
                    len(v) for v in self._update_history.values()
                ),
                "workers": workers,
            }
