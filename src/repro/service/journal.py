"""Crash-safe request journal: the serving tier's flight recorder.

The sharded daemon promises that **no accepted request is ever lost**:
a worker SIGKILLed (or OOM-killed, or wedged) mid-request must not
silently eat the requests it was carrying.  The journal is how that
promise survives crashes of the *front* process too — it is an
append-only NDJSON file where every record lands whole or not at all
(single ``O_APPEND`` write + fsync, see :func:`repro.ioutil.
append_line`).

Record lifecycle, one JSON object per line::

    {"event": "accepted",   "seq": 7, "request": {...}}
    {"event": "dispatched", "seq": 7, "worker": 2}
    {"event": "replayed",   "seq": 7, "worker": 0, "reason": "worker-died"}
    {"event": "completed",  "seq": 7, "ok": true, "labels_crc32": 123}
    {"event": "shed",       "seq": 7, "reason": "draining"}

Every ``accepted`` must eventually be closed by exactly one
``completed`` or ``shed`` — :meth:`RequestJournal.reconcile` checks
that balance live, and :func:`scan_journal` recovers it from disk
(tolerating one torn tail line from a crash mid-append), yielding the
still-open requests a restarted daemon should re-drive.

The journal deliberately stores the *request* on acceptance, not on
completion: replay needs the inputs, and the response's
``labels_crc32`` recorded at completion is what lets the chaos drills
prove a replayed request produced the bit-identical canonical labels.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ioutil import append_line, open_append

__all__ = ["RequestJournal", "JournalRecovery", "scan_journal"]

#: events that close an accepted request's lifecycle.
_CLOSING = ("completed", "shed")


class RequestJournal:
    """Append-only, fsync'd request journal (thread-safe).

    ``fsync=False`` trades the durability guarantee for speed — useful
    for benchmarks; the chaos drills run with the default.
    """

    def __init__(self, path, *, fsync: bool = True) -> None:
        self.path = os.fspath(path)
        self._fsync = fsync
        self._fd: Optional[int] = open_append(self.path)
        self._lock = threading.Lock()
        # live counters (this process's appends only)
        self.accepted_count = 0
        self.completed_count = 0
        self.shed_count = 0
        self.replayed_count = 0
        self.dispatched_count = 0
        self._open_seqs: set = set()

    # -- record appenders ----------------------------------------------
    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._fd is None:
                return  # closed journal: drop, never block shutdown
            append_line(self._fd, line, fsync=self._fsync)

    def accepted(self, seq: int, request: dict) -> None:
        """One request passed admission; it must now complete or shed."""
        self._append(
            {"event": "accepted", "seq": seq, "request": request}
        )
        with self._lock:
            self.accepted_count += 1
            self._open_seqs.add(seq)

    def dispatched(self, seq: int, worker: int) -> None:
        self._append(
            {"event": "dispatched", "seq": seq, "worker": worker}
        )
        with self._lock:
            self.dispatched_count += 1

    def replayed(self, seq: int, worker: int, *, reason: str) -> None:
        """An in-flight request was re-driven onto another worker."""
        self._append(
            {
                "event": "replayed",
                "seq": seq,
                "worker": worker,
                "reason": reason,
            }
        )
        with self._lock:
            self.replayed_count += 1

    def completed(
        self,
        seq: int,
        *,
        ok: bool,
        labels_crc32: Optional[int] = None,
        error_type: Optional[str] = None,
        version: Optional[int] = None,
    ) -> None:
        """The request was answered (success or typed failure).

        ``version`` stamps the graph-state epoch an ``update`` request
        left its session at; replay after a crash re-drives the
        still-open updates in seq order, and the monotone version
        sequence in the journal is how the recovery view (and the
        chaos drills) prove the deltas re-applied in order.
        """
        record: dict = {"event": "completed", "seq": seq, "ok": ok}
        if labels_crc32 is not None:
            record["labels_crc32"] = labels_crc32
        if error_type is not None:
            record["error_type"] = error_type
        if version is not None:
            record["version"] = int(version)
        self._append(record)
        with self._lock:
            self.completed_count += 1
            self._open_seqs.discard(seq)

    def shed(self, seq: int, *, reason: str) -> None:
        """The request was shed after acceptance (drain overrun)."""
        self._append({"event": "shed", "seq": seq, "reason": reason})
        with self._lock:
            self.shed_count += 1
            self._open_seqs.discard(seq)

    # -- introspection --------------------------------------------------
    def reconcile(self) -> dict:
        """The accepted-vs-answered balance, live.

        ``balanced`` is the drain-time invariant the chaos drills pin:
        every accepted request was answered (completed) or shed — zero
        were lost, even across worker SIGKILLs.
        """
        with self._lock:
            return {
                "accepted": self.accepted_count,
                "completed": self.completed_count,
                "shed": self.shed_count,
                "replayed": self.replayed_count,
                "dispatched": self.dispatched_count,
                "open": len(self._open_seqs),
                "balanced": (
                    self.accepted_count
                    == self.completed_count + self.shed_count
                ),
            }

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "RequestJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalRecovery:
    """What a journal file says happened (crash-recovery view)."""

    accepted: int = 0
    completed: int = 0
    shed: int = 0
    replayed: int = 0
    dispatched: int = 0
    #: lines that failed to parse (at most the torn tail of a crash).
    torn_lines: int = 0
    #: ``seq -> request`` for accepted requests never answered — what a
    #: restarted daemon should re-drive.
    pending: Dict[int, dict] = field(default_factory=dict)
    #: ``seq -> labels_crc32`` of completed-ok requests that carried one.
    crcs: Dict[int, int] = field(default_factory=dict)
    #: ``seq -> graph version`` of completed-ok update requests.
    versions: Dict[int, int] = field(default_factory=dict)
    #: replay events in order, ``(seq, worker, reason)``.
    replays: List[tuple] = field(default_factory=list)

    @property
    def balanced(self) -> bool:
        return self.accepted == self.completed + self.shed


def scan_journal(path) -> JournalRecovery:
    """Parse a journal file back into its recovery view.

    Unparseable lines are tolerated and counted (``torn_lines``) — a
    crash mid-append leaves at most one, and skipping it errs toward
    replaying a request that may have finished, which is safe because
    results are deterministic (same canonical ``labels_crc32``).
    """
    rec = JournalRecovery()
    try:
        fh = open(os.fspath(path), "r", encoding="utf-8")
    except FileNotFoundError:
        return rec
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                event = record["event"]
                seq = int(record["seq"])
            except (ValueError, KeyError, TypeError):
                rec.torn_lines += 1
                continue
            if event == "accepted":
                rec.accepted += 1
                rec.pending[seq] = record.get("request", {})
            elif event == "dispatched":
                rec.dispatched += 1
            elif event == "replayed":
                rec.replayed += 1
                rec.replays.append(
                    (
                        seq,
                        record.get("worker"),
                        record.get("reason", ""),
                    )
                )
            elif event == "completed":
                rec.completed += 1
                rec.pending.pop(seq, None)
                if record.get("ok") and "labels_crc32" in record:
                    rec.crcs[seq] = record["labels_crc32"]
                if record.get("ok") and "version" in record:
                    rec.versions[seq] = int(record["version"])
            elif event == "shed":
                rec.shed += 1
                rec.pending.pop(seq, None)
            else:
                rec.torn_lines += 1
    return rec
