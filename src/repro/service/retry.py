"""Retry policy and circuit breaker: the middle of the hardening stack.

Admission control (:mod:`repro.service.govern`) decides whether work
*enters*; this module decides what happens when admitted work *fails*.
Two cooperating pieces:

* :class:`RetryPolicy` — bounded retry with exponential backoff and
  **deterministic** jitter (seeded by ``(seed, key, attempt)``, so a
  replayed request backs off identically — the same reproducibility
  contract as :class:`~repro.runtime.faults.FaultPlan`).  Failures are
  split by :func:`classify_failure` into *transient* (a different
  attempt can succeed: broken pool, deadline expiry, injected chaos)
  and *permanent* (retrying re-burns the same failure: malformed
  input, invariant violations, budget refusals) — transient failures
  retry, permanent ones fail fast.

* :class:`CircuitBreaker` / :class:`BackendBreakers` — per-backend
  failure accounting.  ``N`` consecutive failures trip the breaker
  *open*; while open, :meth:`BackendBreakers.resolve` walks the
  existing degradation ladder (:data:`~repro.runtime.lifecycle.
  DEGRADE_CHAIN`: supervised -> processes -> serial) so traffic keeps
  flowing on a healthier executor instead of hammering a broken pool.
  After ``cooldown`` seconds the breaker goes *half-open* and admits
  one probe: success closes it, failure re-opens it for another
  cooldown.  ``serial`` is the ladder's floor and is never broken.

Both pieces are clock- and sleep-injectable, so every state transition
is unit-testable without wall-clock waits.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import (
    GraphIngestError,
    GraphValidationError,
    IntegrityError,
    MemoryBudgetError,
    PhaseTimeoutError,
    ReproError,
    ServiceOverloadError,
    WorkerLostError,
)
from ..runtime.faults import FaultInjected
from ..runtime.lifecycle import DEGRADE_CHAIN

__all__ = [
    "TRANSIENT",
    "PERMANENT",
    "classify_failure",
    "RetryPolicy",
    "RetryOutcome",
    "CircuitBreaker",
    "BackendBreakers",
]

#: failure classes a different attempt can plausibly survive.
TRANSIENT = (
    PhaseTimeoutError,
    FaultInjected,
    TimeoutError,
    ConnectionError,
    BrokenPipeError,
    EOFError,
    # a respawned serving worker can handle the retry.
    WorkerLostError,
    # detected corruption: the service quarantines the rotten session
    # before re-raising, so the retry rebuilds from source and serves
    # clean bytes.  ``--on-corruption fail`` flips this per-exception
    # via ``transient_hint``, which outranks the class check.
    IntegrityError,
)

#: failure classes where a retry replays the exact same failure.
PERMANENT = (
    GraphIngestError,
    GraphValidationError,
    MemoryBudgetError,
    ServiceOverloadError,
    ValueError,
    TypeError,
    KeyError,
    # OSError is transient below (fd exhaustion, fork pressure), but
    # these subclasses describe the *input*, and retrying cannot make
    # a missing path appear or a permission bit flip.
    FileNotFoundError,
    PermissionError,
    IsADirectoryError,
    NotADirectoryError,
)


def classify_failure(exc: BaseException) -> str:
    """``"transient"`` or ``"permanent"`` for one failure.

    Order matters: a ``transient_hint`` attribute wins over every class
    check — it is how a worker's verdict crosses the pipe, where the
    original exception class cannot (see :class:`~repro.service.
    workers.RemoteRequestError`).  Then the specific permanent classes
    win over their transient bases (``GraphIngestError`` is a
    ``ValueError``; ``PhaseTimeoutError`` is a ``TimeoutError``).
    ``PoolBrokenError`` is transient by name (a rebuilt pool is a
    different pool); unknown failures are permanent — fail fast rather
    than loop on a bug.
    """
    from ..runtime.supervisor import PoolBrokenError

    hint = getattr(exc, "transient_hint", None)
    if hint is not None:
        return "transient" if hint else "permanent"
    if isinstance(exc, (PoolBrokenError,) + TRANSIENT):
        return "transient"
    if isinstance(exc, PERMANENT):
        return "permanent"
    if isinstance(exc, (OSError, ReproError)):
        # resource hiccups (fd exhaustion, fork failure) are worth one
        # more try; unknown ReproError subclasses default permanent.
        return "transient" if isinstance(exc, OSError) else "permanent"
    return "permanent"


@dataclass
class RetryOutcome:
    """What one retried execution did."""

    value: Any = None
    ok: bool = False
    #: attempts actually made (1 = first try succeeded).
    attempts: int = 0
    #: ``"ClassName: message"`` per failed attempt, in order.
    errors: List[str] = field(default_factory=list)
    #: total backoff slept, seconds.
    backoff_seconds: float = 0.0


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``max_attempts`` counts *total* tries; ``max_attempts=1`` disables
    retry.  The delay before attempt ``a`` (0-based) retries is
    ``min(backoff_base * backoff_factor**a, backoff_max)`` scaled by a
    jitter factor in ``[1 - jitter, 1 + jitter]`` derived from
    ``crc32(seed, key, attempt)`` — fully reproducible, no shared RNG
    state.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, *, key: int = 0) -> float:
        """Backoff before retrying after failed attempt ``attempt``."""
        base = min(
            self.backoff_base * (self.backoff_factor ** attempt),
            self.backoff_max,
        )
        if self.jitter == 0.0 or base == 0.0:
            return base
        token = f"{self.seed}:{key}:{attempt}".encode()
        frac = zlib.crc32(token) / 0xFFFFFFFF  # [0, 1], deterministic
        return base * (1.0 - self.jitter + 2.0 * self.jitter * frac)

    def execute(
        self,
        fn: Callable[[int], Any],
        *,
        key: int = 0,
        classify: Callable[[BaseException], str] = classify_failure,
        sleep: Callable[[float], None] = time.sleep,
        on_failure: Optional[Callable[[BaseException, int], None]] = None,
    ) -> RetryOutcome:
        """Run ``fn(attempt)`` under the policy.

        Transient failures retry (after backoff) until the attempt
        budget runs out; permanent ones re-raise immediately.  When the
        budget is exhausted the *last* transient failure re-raises.
        ``on_failure(exc, attempt)`` fires before each classification
        verdict is acted on — the service uses it to feed the circuit
        breaker, which may change what the next ``fn(attempt)`` does.
        Either way the raised exception carries the outcome so far as
        ``exc.__retry_outcome__``.
        """
        outcome = RetryOutcome()
        for attempt in range(self.max_attempts):
            outcome.attempts = attempt + 1
            try:
                outcome.value = fn(attempt)
                outcome.ok = True
                return outcome
            except Exception as exc:
                outcome.errors.append(
                    f"{type(exc).__name__}: {exc}"
                )
                if on_failure is not None:
                    on_failure(exc, attempt)
                last_attempt = attempt + 1 >= self.max_attempts
                if classify(exc) != "transient" or last_attempt:
                    exc.__retry_outcome__ = outcome
                    raise
                pause = self.delay(attempt, key=key)
                if pause > 0:
                    sleep(pause)
                    outcome.backoff_seconds += pause
        raise AssertionError("unreachable")  # pragma: no cover


class CircuitBreaker:
    """Consecutive-failure breaker for one backend.

    States: ``closed`` (normal), ``open`` (tripped — callers should
    route around), ``half-open`` (cooldown elapsed — one probe
    allowed).  All transitions go through :meth:`record`.
    """

    def __init__(
        self,
        *,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._consecutive = 0
        self._opened_at: Optional[float] = None
        self.trips = 0

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.cooldown:
            return "half-open"
        return "open"

    @property
    def allows(self) -> bool:
        """True when a request may use this backend right now."""
        return self.state != "open"

    def record(self, ok: bool) -> None:
        """Feed one execution verdict on this backend."""
        if ok:
            self._consecutive = 0
            self._opened_at = None
            return
        self._consecutive += 1
        if self._opened_at is not None:
            # failed half-open probe: re-open for another cooldown.
            self._opened_at = self._clock()
        elif self._consecutive >= self.threshold:
            self._opened_at = self._clock()
            self.trips += 1

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive,
            "trips": self.trips,
        }


class BackendBreakers:
    """One :class:`CircuitBreaker` per executor backend, plus routing.

    :meth:`resolve` maps a requested backend to the one traffic should
    actually use: while a breaker is open, requests degrade down
    :data:`~repro.runtime.lifecycle.DEGRADE_CHAIN` until they reach a
    backend whose breaker allows them (``serial``, the chain's floor,
    always does — it has no pool to break and something must serve).
    """

    def __init__(
        self,
        *,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        chain: Optional[Dict[str, str]] = None,
    ) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self.chain = dict(DEGRADE_CHAIN if chain is None else chain)
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, backend: str) -> CircuitBreaker:
        br = self._breakers.get(backend)
        if br is None:
            br = CircuitBreaker(
                threshold=self.threshold,
                cooldown=self.cooldown,
                clock=self._clock,
            )
            self._breakers[backend] = br
        return br

    def resolve(self, backend: str) -> str:
        """The backend this request should run on right now."""
        seen = set()
        while backend in self.chain and backend not in seen:
            if self.breaker(backend).allows:
                return backend
            seen.add(backend)
            backend = self.chain[backend]
        return backend

    def record(self, backend: str, ok: bool) -> None:
        self.breaker(backend).record(ok)

    def to_dict(self) -> dict:
        return {
            name: br.to_dict()
            for name, br in sorted(self._breakers.items())
        }
