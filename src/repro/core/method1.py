"""Method 1: two-phase parallelization (Algorithm 6).

Phase 1 (data-level parallelism): Par-Trim, then Par-FWBW — all
threads cooperate on the same partition via parallel BFS until the
giant SCC is found — then Par-Trim again, because removing the giant
SCC exposes fresh trimming opportunities.  Phase 2 (task-level
parallelism): the conventional Recur-FWBW over the work queue (K = 1),
seeded by a scan of the surviving colour partitions (Section 4.2's
deferred set construction).

The pipeline is defined once, as a phase plan (:mod:`repro.core.phases`):
:func:`method1_scc` runs it straight through, while the checkpointing
run harness (:mod:`repro.runtime.lifecycle`) runs the same plan with
persistence at every phase boundary.
"""

from __future__ import annotations

from typing import List

from ..graph import CSRGraph
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from .parfwbw import par_fwbw
from .phases import PhaseSpec, run_plan
from .recurfwbw import collect_color_sets, run_recur_phase
from .result import SCCResult
from .state import SCCState
from .trim import par_trim

__all__ = ["method1_scc", "method1_phases"]


def method1_phases(
    *,
    giant_threshold: float = 0.01,
    max_fwbw_trials: int = 5,
    pivot_strategy: str = "random",
    pivot_repr: str = "hybrid",
    bfs_kernel: str = "level",
    queue_k: int = 1,
    backend: str = "serial",
    num_threads: int = 4,
    supervisor=None,
    phase2_batch=False,
) -> List[PhaseSpec]:
    """The Algorithm 6 pipeline as a checkpointable phase plan."""

    def trim(state: SCCState, ctx) -> None:
        par_trim(state)

    def fwbw(state: SCCState, ctx) -> None:
        par_fwbw(
            state,
            0,
            giant_threshold=giant_threshold,
            max_trials=max_fwbw_trials,
            pivot_strategy=pivot_strategy,
            bfs_kernel=bfs_kernel,
        )

    def collect(state: SCCState, ctx) -> None:
        initial = collect_color_sets(state, phase="recur_fwbw")
        if pivot_repr == "scan":
            initial = [(c, None) for c, _ in initial]
        ctx["queue"] = initial

    def recur(state: SCCState, ctx) -> None:
        run_recur_phase(
            state,
            ctx["queue"],
            queue_k=queue_k,
            pivot_strategy=pivot_strategy,
            backend=ctx.get("backend", backend),
            num_threads=num_threads,
            supervisor=supervisor,
            deadline=ctx.get("deadline"),
            session=ctx.get("session"),
            phase2_batch=phase2_batch,
        )

    return [
        PhaseSpec("par_trim_1", "par_trim", trim),
        PhaseSpec("par_fwbw", "par_fwbw", fwbw),
        PhaseSpec("par_trim_2", "par_trim", trim),
        PhaseSpec("collect_queue", "recur_fwbw", collect),
        PhaseSpec("recur_fwbw", "recur_fwbw", recur, uses_backend=True),
    ]


def method1_scc(
    g: CSRGraph,
    *,
    seed: int | None = 0,
    cost: CostModel = DEFAULT_COST_MODEL,
    **kwargs,
) -> SCCResult:
    """Algorithm 6.  See :func:`repro.core.api.strongly_connected_components`."""
    state = SCCState(g, seed=seed, cost=cost)
    run_plan(state, method1_phases(**kwargs))
    state.check_done()
    return SCCResult(
        labels=state.labels,
        method="method1",
        profile=state.profile,
        phase_of=state.phase_of,
    )
