"""Method 1: two-phase parallelization (Algorithm 6).

Phase 1 (data-level parallelism): Par-Trim, then Par-FWBW — all
threads cooperate on the same partition via parallel BFS until the
giant SCC is found — then Par-Trim again, because removing the giant
SCC exposes fresh trimming opportunities.  Phase 2 (task-level
parallelism): the conventional Recur-FWBW over the work queue (K = 1),
seeded by a scan of the surviving colour partitions (Section 4.2's
deferred set construction).
"""

from __future__ import annotations

from ..graph import CSRGraph
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from .parfwbw import par_fwbw
from .recurfwbw import collect_color_sets, run_recur_phase
from .result import SCCResult
from .state import SCCState
from .trim import par_trim

__all__ = ["method1_scc"]


def method1_scc(
    g: CSRGraph,
    *,
    seed: int | None = 0,
    cost: CostModel = DEFAULT_COST_MODEL,
    giant_threshold: float = 0.01,
    max_fwbw_trials: int = 5,
    pivot_strategy: str = "random",
    pivot_repr: str = "hybrid",
    bfs_kernel: str = "level",
    queue_k: int = 1,
    backend: str = "serial",
    num_threads: int = 4,
    supervisor=None,
) -> SCCResult:
    """Algorithm 6.  See :func:`repro.core.api.strongly_connected_components`."""
    state = SCCState(g, seed=seed, cost=cost)
    # Phase 1: parallelism in trims and traversals.
    with state.profile.wall_timer("par_trim"):
        par_trim(state)
    with state.profile.wall_timer("par_fwbw"):
        par_fwbw(
            state,
            0,
            giant_threshold=giant_threshold,
            max_trials=max_fwbw_trials,
            pivot_strategy=pivot_strategy,
            bfs_kernel=bfs_kernel,
        )
    with state.profile.wall_timer("par_trim"):
        par_trim(state)
    # Phase 2: parallelism in recursion.
    with state.profile.wall_timer("recur_fwbw"):
        initial = collect_color_sets(state, phase="recur_fwbw")
        if pivot_repr == "scan":
            initial = [(c, None) for c, _ in initial]
        run_recur_phase(
            state,
            initial,
            queue_k=queue_k,
            pivot_strategy=pivot_strategy,
            backend=backend,
            num_threads=num_threads,
            supervisor=supervisor,
        )
    state.check_done()
    return SCCResult(
        labels=state.labels,
        method="method1",
        profile=state.profile,
        phase_of=state.phase_of,
    )
