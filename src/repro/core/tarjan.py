"""Tarjan's SCC algorithm — the optimal sequential baseline.

Figure 6's y-axis is "speedup compared to the optimal sequential
algorithm (i.e. Tarjan's)", so this implementation is the denominator
of every headline number.  Section 4.2's implementation notes are
honoured:

* the DFS is **iterative** with an explicit machine stack — the
  recursion depth reaches the size of the largest SCC, O(N) on
  real-world graphs, which overflows any language runtime's stack;
* the Tarjan node stack is kept as both a vector and a boolean
  membership array ("like the Color array and std::set representations
  ... we implement this stack using both a vector and a boolean array
  for fast execution").

Work accounting: one sequential record of ``cost.dfs(n, m)`` — every
node and edge is visited exactly once, at the pointer-chasing rate
(DESIGN.md §5).
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from ..runtime.trace import WorkTrace

__all__ = ["tarjan_scc"]


def tarjan_scc(
    g: CSRGraph,
    *,
    trace: WorkTrace | None = None,
    phase: str = "tarjan",
    cost: CostModel = DEFAULT_COST_MODEL,
) -> np.ndarray:
    """Return SCC labels (0-based, in root-finishing order)."""
    n = g.num_nodes
    indptr, indices = g.indptr, g.indices
    index = np.full(n, -1, dtype=np.int64)  # discovery order
    lowlink = np.zeros(n, dtype=np.int64)
    labels = np.full(n, -1, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)  # boolean twin of tstack
    tstack: list[int] = []  # Tarjan's node stack (vector twin)
    # Explicit DFS stack: (node, next-edge cursor); cursors live in an
    # array so re-entering a frame resumes where it left off.
    cursor = np.zeros(n, dtype=np.int64)
    next_index = 0
    scc_count = 0

    for root in range(n):
        if index[root] != -1:
            continue
        dfs: list[int] = [root]
        index[root] = lowlink[root] = next_index
        next_index += 1
        cursor[root] = indptr[root]
        tstack.append(root)
        on_stack[root] = True
        while dfs:
            u = dfs[-1]
            ptr = cursor[u]
            if ptr < indptr[u + 1]:
                cursor[u] = ptr + 1
                v = int(indices[ptr])
                if index[v] == -1:
                    index[v] = lowlink[v] = next_index
                    next_index += 1
                    cursor[v] = indptr[v]
                    tstack.append(v)
                    on_stack[v] = True
                    dfs.append(v)
                elif on_stack[v]:
                    if index[v] < lowlink[u]:
                        lowlink[u] = index[v]
            else:
                dfs.pop()
                if dfs:
                    parent = dfs[-1]
                    if lowlink[u] < lowlink[parent]:
                        lowlink[parent] = lowlink[u]
                if lowlink[u] == index[u]:
                    # u is an SCC root: pop its members.
                    while True:
                        w = tstack.pop()
                        on_stack[w] = False
                        labels[w] = scc_count
                        if w == u:
                            break
                    scc_count += 1

    if trace is not None:
        trace.sequential(phase, work=cost.dfs(nodes=n, edges=g.num_edges))
    return labels
