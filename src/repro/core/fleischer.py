"""The original FW-BW algorithm (Fleischer, Hendrickson, Pınar 2000).

No Trim step, no phase-1 data parallelism — pure recursive FW-BW over
the work queue.  This is the ancestor the whole paper builds on
(Section 2.1) and the weakest comparator: on real-world graphs the
million size-1 SCCs each cost a full (tiny) FW-BW task, and the giant
SCC serializes one worker, so it loses to everything including the
Baseline.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from .recurfwbw import run_recur_phase
from .result import SCCResult
from .state import SCCState

__all__ = ["fwbw_scc"]


def fwbw_scc(
    g: CSRGraph,
    *,
    seed: int | None = 0,
    cost: CostModel = DEFAULT_COST_MODEL,
    pivot_strategy: str = "random",
    queue_k: int = 1,
    backend: str = "serial",
    num_threads: int = 4,
) -> SCCResult:
    """Pure recursive FW-BW (no Trim), Fleischer et al.'s algorithm."""
    state = SCCState(g, seed=seed, cost=cost)
    with state.profile.wall_timer("recur_fwbw"):
        initial = [(0, np.arange(g.num_nodes, dtype=np.int64))]
        run_recur_phase(
            state,
            initial,
            queue_k=queue_k,
            pivot_strategy=pivot_strategy,
            backend=backend,
            num_threads=num_threads,
        )
    state.check_done()
    return SCCResult(
        labels=state.labels,
        method="fwbw",
        profile=state.profile,
        phase_of=state.phase_of,
    )
