"""Pivot selection strategies for the FW-BW steps.

The paper picks a random node of the target colour (Algorithm 5).
Picking a high-degree node instead raises the odds of landing inside
the giant SCC on the first try — a folklore optimization (used e.g. by
Slota et al.'s Multistep) exposed here as an option and examined in the
ablation benches.
"""

from __future__ import annotations

import numpy as np

__all__ = ["choose_pivot", "PIVOT_STRATEGIES"]

PIVOT_STRATEGIES = ("random", "maxdegree", "first")


def choose_pivot(
    candidates: np.ndarray,
    strategy: str,
    rng: np.random.Generator,
    graph=None,
) -> int:
    """Pick one node of ``candidates`` (non-empty) per ``strategy``.

    ``maxdegree`` ranks by (out-degree + in-degree) in the *original*
    graph — the colour-restricted degree would cost a full sweep, which
    defeats the point of a cheap heuristic.
    """
    if candidates.size == 0:
        raise ValueError("no candidates to pick a pivot from")
    if strategy == "random":
        # Same stream draw as ``rng.choice(candidates)`` (choice with
        # uniform p reduces to one ``integers`` call) without its
        # per-call shape-handling overhead — this runs once per
        # phase-2 task, tens of thousands of times on tail storms.
        return int(candidates[rng.integers(0, candidates.size)])
    if strategy == "first":
        return int(candidates[0])
    if strategy == "maxdegree":
        if graph is None:
            raise ValueError("maxdegree strategy needs the graph")
        deg = (
            graph.indptr[candidates + 1]
            - graph.indptr[candidates]
            + graph.in_indptr[candidates + 1]
            - graph.in_indptr[candidates]
        )
        return int(candidates[int(np.argmax(deg))])
    raise ValueError(
        f"unknown pivot strategy {strategy!r}; choose from {PIVOT_STRATEGIES}"
    )
