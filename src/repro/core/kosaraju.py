"""Kosaraju's two-pass SCC algorithm.

A second sequential algorithm, used as an independent correctness
cross-check against Tarjan's (two implementations rarely share a bug)
and as a sequential baseline datapoint in the benchmark tables.  Both
DFS passes are iterative, for the same stack-depth reason as Tarjan's.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from ..runtime.trace import WorkTrace

__all__ = ["kosaraju_scc"]


def kosaraju_scc(
    g: CSRGraph,
    *,
    trace: WorkTrace | None = None,
    phase: str = "kosaraju",
    cost: CostModel = DEFAULT_COST_MODEL,
) -> np.ndarray:
    """Return SCC labels via finish-order DFS + reverse-graph DFS."""
    n = g.num_nodes
    indptr, indices = g.indptr, g.indices
    rptr, ridx = g.in_indptr, g.in_indices

    # Pass 1: forward DFS computing reverse finishing order.
    visited = np.zeros(n, dtype=bool)
    cursor = np.zeros(n, dtype=np.int64)
    finish: list[int] = []
    for root in range(n):
        if visited[root]:
            continue
        visited[root] = True
        cursor[root] = indptr[root]
        dfs = [root]
        while dfs:
            u = dfs[-1]
            ptr = cursor[u]
            if ptr < indptr[u + 1]:
                cursor[u] = ptr + 1
                v = int(indices[ptr])
                if not visited[v]:
                    visited[v] = True
                    cursor[v] = indptr[v]
                    dfs.append(v)
            else:
                dfs.pop()
                finish.append(u)

    # Pass 2: reverse-graph DFS in decreasing finish order.
    labels = np.full(n, -1, dtype=np.int64)
    scc_count = 0
    for root in reversed(finish):
        if labels[root] != -1:
            continue
        labels[root] = scc_count
        dfs = [root]
        while dfs:
            u = dfs.pop()
            for v in ridx[rptr[u] : rptr[u + 1]]:
                if labels[v] == -1:
                    labels[v] = scc_count
                    dfs.append(int(v))
        scc_count += 1

    if trace is not None:
        # Two full passes over nodes and edges at DFS rates.
        trace.sequential(
            phase, work=2.0 * cost.dfs(nodes=n, edges=g.num_edges)
        )
    return labels
