"""Par-FWBW: the data-parallel FW-BW step (phase 1 of Methods 1 and 2).

Section 3.2: the conventional algorithm lets one thread discover the
giant O(N)-sized SCC while every other thread idles.  Par-FWBW instead
points *all* threads at the same partition: the forward and backward
reachable sets of a pivot are computed with parallel BFS (few levels,
huge frontiers on small-world graphs), the intersection is the pivot's
SCC, and the process repeats until an SCC covering at least
``giant_threshold`` of the graph has been found or the trial budget is
exhausted.

Colour bookkeeping follows Algorithm 5 exactly: the FW pass recolours
``c -> cfw``; the BW pass recolours ``c -> cbw`` and ``cfw -> cscc``
(the intersection), pruning everywhere else.  Partitions produced along
the way (cfw/cbw remainders and the final colour ``c``) stay in the
colour array; phase 2 picks them up either by a scan (Method 1,
Section 4.2's deferred set construction) or through Par-WCC (Method 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..traversal.bfs import bfs_color_transform
from ..traversal.dobfs import direction_optimizing_bfs
from .pivot import choose_pivot
from .state import PHASE_FWBW, SCCState

__all__ = ["ParFWBWOutcome", "par_fwbw"]


@dataclass
class _MaskFW:
    """Adapter giving a dobfs mask the BFSResult.recolored interface."""

    recolored: dict


@dataclass
class ParFWBWOutcome:
    """What phase 1 left behind."""

    #: True when an SCC of at least the giant threshold was found.
    found_giant: bool
    #: size of the largest SCC identified in this step.
    largest_scc: int
    #: number of pivot trials performed.
    trials: int
    #: colours of partitions that still hold unfinished nodes
    #: (the final remainder colour plus every cfw/cbw created).
    open_colors: List[int] = field(default_factory=list)


def par_fwbw(
    state: SCCState,
    c: int = 0,
    *,
    giant_threshold: float = 0.01,
    max_trials: int = 5,
    pivot_strategy: str = "random",
    bfs_kernel: str = "level",
    phase: str = "par_fwbw",
) -> ParFWBWOutcome:
    """Run the parallel FW-BW step on colour ``c``.

    ``giant_threshold`` is the fraction of the original graph's nodes
    an SCC must reach to count as "the giant" (the paper suggests 1 %);
    ``max_trials`` bounds the pivot attempts either way.

    ``bfs_kernel`` selects the traversal for the forward pass:
    ``"level"`` (the paper's level-synchronous BFS) or ``"dobfs"``
    (Beamer et al.'s direction-optimizing BFS — the Section 4.2
    "post-graph500 improvements" hook; it computes a reachability mask
    and then recolours in one sweep).  The backward pass always uses
    the colour-transforming kernel because it must distinguish the
    ``cfw``/``c`` transitions.
    """
    if bfs_kernel not in ("level", "dobfs"):
        raise ValueError(f"unknown bfs_kernel {bfs_kernel!r}")
    if not (0.0 < giant_threshold <= 1.0):
        raise ValueError("giant_threshold must be in (0, 1]")
    if max_trials < 1:
        raise ValueError("max_trials must be >= 1")
    g, color = state.graph, state.color
    cost = state.cost
    n = state.num_nodes
    threshold_nodes = max(1, int(np.ceil(giant_threshold * n)))

    outcome = ParFWBWOutcome(found_giant=False, largest_scc=0, trials=0)
    current = c
    for _ in range(max_trials):
        # Pivot selection scans the colour array (phase 1 keeps no sets
        # — Section 4.1 uses the hybrid representation only in phase 2).
        candidates = np.flatnonzero(color == current)
        state.trace.parallel_for(
            phase,
            work=cost.stream(nodes=n),
            items=n,
            schedule="static",
        )
        if candidates.size == 0:
            break
        outcome.trials += 1
        pivot = choose_pivot(candidates, pivot_strategy, state.rng, g)

        cfw = state.new_color()
        cbw = state.new_color()
        cscc = state.new_color()
        if bfs_kernel == "dobfs":
            mask, _res = direction_optimizing_bfs(
                g,
                pivot,
                direction="out",
                allowed=color == current,
                trace=state.trace,
                phase=phase,
                cost=cost,
            )
            # recolouring happens in one sweep after the mask is known
            # (the pivot is in the mask and still carries `current`).
            fw_nodes = np.flatnonzero(mask)
            color[fw_nodes] = cfw
            state.trace.parallel_for(
                phase,
                work=cost.stream(nodes=fw_nodes.size),
                items=int(max(fw_nodes.size, 1)),
            )
            fw = _MaskFW({cfw: fw_nodes})
        else:
            fw = bfs_color_transform(
                g,
                pivot,
                {current: cfw},
                color,
                direction="out",
                trace=state.trace,
                phase=phase,
                cost=cost,
            )
        bw = bfs_color_transform(
            g,
            pivot,
            {current: cbw, cfw: cscc},
            color,
            direction="in",
            trace=state.trace,
            phase=phase,
            cost=cost,
        )
        scc_nodes = bw.recolored[cscc]
        state.mark_scc(scc_nodes, PHASE_FWBW)
        outcome.largest_scc = max(outcome.largest_scc, int(scc_nodes.size))
        if scc_nodes.size >= threshold_nodes:
            outcome.found_giant = True
            outcome.open_colors.extend([cfw, cbw])
            break
        # The pivot missed the giant.  The giant SCC now lies in
        # whichever partition is largest: the pivot's FW set (pivot
        # upstream of the giant), its BW set (downstream), or the
        # unreached remainder — so retry there.  Retrying only on the
        # remainder (a literal reading of "repeat") can never find a
        # giant sitting in the FW/BW set.
        fw_size = fw.recolored[cfw].size - scc_nodes.size  # minus the SCC
        bw_size = bw.recolored[cbw].size
        remain_size = candidates.size - scc_nodes.size - fw_size - bw_size
        sizes = {current: remain_size, cfw: fw_size, cbw: bw_size}
        next_color = max(sizes, key=lambda k: sizes[k])
        outcome.open_colors.extend(
            k for k in (cfw, cbw, current) if k != next_color
        )
        current = next_color
    else:
        outcome.open_colors.append(current)
    if outcome.found_giant:
        outcome.open_colors.append(current)
    state.profile.bump("fwbw_trials", outcome.trials)
    return outcome
