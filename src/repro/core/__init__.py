"""The paper's contribution: parallel SCC detection algorithms.

Sequential baselines (Tarjan, Kosaraju), the conventional parallel
Baseline (Algorithm 3), and the paper's Method 1 / Method 2 pipelines
with all their building blocks (Par-Trim, Par-Trim2, Par-WCC,
Par-FWBW, Recur-FWBW).  Entry point:
:func:`~repro.core.api.strongly_connected_components`.
"""

from .api import strongly_connected_components, METHODS
from .baseline import baseline_scc
from .coloring import coloring_scc, color_propagation_round
from .fleischer import fwbw_scc
from .gabow import gabow_scc
from .kosaraju import kosaraju_scc
from .method1 import method1_scc
from .method2 import method2_scc
from .multistep import multistep_scc
from .parfwbw import ParFWBWOutcome, par_fwbw
from .pivot import choose_pivot, PIVOT_STRATEGIES
from .recurfwbw import (
    WorkItem,
    collect_color_sets,
    recur_fwbw_task,
    run_recur_phase,
)
from .result import SCCResult, canonical_labels, same_partition
from .state import (
    SCCState,
    StateSnapshot,
    StateInvariantError,
    DONE_COLOR,
    PHASE_TRIM,
    PHASE_TRIM2,
    PHASE_FWBW,
    PHASE_RECUR,
    PHASE_COLORING,
    PHASE_NAMES,
)
from .tarjan import tarjan_scc
from .trim import effective_degrees, par_trim, par_trim_rescan
from .trim2 import par_trim2
from .wcc import par_wcc

__all__ = [
    "strongly_connected_components",
    "METHODS",
    "baseline_scc",
    "coloring_scc",
    "color_propagation_round",
    "fwbw_scc",
    "gabow_scc",
    "kosaraju_scc",
    "method1_scc",
    "method2_scc",
    "multistep_scc",
    "ParFWBWOutcome",
    "par_fwbw",
    "choose_pivot",
    "PIVOT_STRATEGIES",
    "WorkItem",
    "collect_color_sets",
    "recur_fwbw_task",
    "run_recur_phase",
    "SCCResult",
    "canonical_labels",
    "same_partition",
    "SCCState",
    "StateSnapshot",
    "StateInvariantError",
    "DONE_COLOR",
    "PHASE_TRIM",
    "PHASE_TRIM2",
    "PHASE_FWBW",
    "PHASE_RECUR",
    "PHASE_COLORING",
    "PHASE_NAMES",
    "tarjan_scc",
    "effective_degrees",
    "par_trim",
    "par_trim_rescan",
    "par_trim2",
    "par_wcc",
]
