"""Baseline: parallel Trim + recursive FW-BW over a work queue (Alg. 3).

The paper's efficient rendition of conventional FW-BW-Trim: one
parallel Trim pass to strip the (numerous) trivial SCCs up front, then
the recursive FW-BW algorithm fed through the work queue with K = 1.
Its known failure mode — one task serially digesting the giant SCC
while every other thread idles — is what Figures 6 and 7 show and what
Method 1 fixes.
"""

from __future__ import annotations

from ..graph import CSRGraph
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from .recurfwbw import collect_color_sets, run_recur_phase
from .result import SCCResult
from .state import SCCState
from .trim import par_trim

__all__ = ["baseline_scc"]


def baseline_scc(
    g: CSRGraph,
    *,
    seed: int | None = 0,
    cost: CostModel = DEFAULT_COST_MODEL,
    pivot_strategy: str = "random",
    pivot_repr: str = "hybrid",
    queue_k: int = 1,
    backend: str = "serial",
    num_threads: int = 4,
    supervisor=None,
) -> SCCResult:
    """Algorithm 3.  See :func:`repro.core.api.strongly_connected_components`."""
    state = SCCState(g, seed=seed, cost=cost)
    with state.profile.wall_timer("par_trim"):
        par_trim(state)
    with state.profile.wall_timer("recur_fwbw"):
        initial = collect_color_sets(state, phase="recur_fwbw")
        if pivot_repr == "scan":
            initial = [(c, None) for c, _ in initial]
        run_recur_phase(
            state,
            initial,
            queue_k=queue_k,
            pivot_strategy=pivot_strategy,
            backend=backend,
            num_threads=num_threads,
            supervisor=supervisor,
        )
    state.check_done()
    return SCCResult(
        labels=state.labels,
        method="baseline",
        profile=state.profile,
        phase_of=state.phase_of,
    )
