"""Par-WCC: parallel weakly-connected-component colouring (Algorithm 7).

Section 3.3's fix for the serialized recursive phase: once the giant
SCC is gone, the remaining graph shatters into many mutually
disconnected islands, but they all share one colour per FW/BW
partition, so the work queue sees only a handful of items.  Par-WCC
splits every current partition into its weakly connected components
and gives each its own colour — turning ~6 queue items into ~10,000
(Section 5) — and, as a bonus, hands back each component's node list,
which is exactly the hybrid set representation phase 2 wants
(Section 4.1).

The kernel is min-label propagation with pointer jumping, the
hook-and-compress structure of Algorithm 7.  One published deviation
(DESIGN.md §2): Algorithm 7 as printed pulls labels over
*out*-neighbours only, which cannot merge the endpoints of a one-way
edge whose label order fights the edge direction; we propagate over
both directions, which is the actual definition of weak connectivity
given in the text ("mutually reachable by converting directed edges to
undirected edges").  ``directions="out"`` reproduces the printed
variant for the demonstration test.

Label propagation respects colours: components never merge across
partition boundaries, so every SCC stays within one work item.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..kernels import expand_frontier, wcc_hook_round
from .state import SCCState

__all__ = ["par_wcc"]


def par_wcc(
    state: SCCState,
    *,
    phase: str = "par_wcc",
    directions: str = "both",
    compress: bool = True,
) -> List[Tuple[int, np.ndarray]]:
    """Recolour every active partition into its WCCs.

    Returns ``[(color, nodes), ...]`` — one entry per WCC, nodes sorted
    — ready to seed the phase-2 work queue.

    ``compress=False`` disables the per-iteration pointer-jumping
    round: convergence then takes O(component diameter) hook rounds
    instead of O(log diameter).  This reproduces the convergence
    behaviour the paper reports on high-diameter graphs ("the
    algorithm requires a large number of iterations for convergence
    when applied on non-small-world graphs", Section 5) — with
    compression, our Par-WCC is strictly better than the published one
    on road networks, which shifts Method 2's CA-road result (see
    EXPERIMENTS.md and ``benchmarks/bench_ablation_wcc_compress.py``).
    """
    if directions not in ("both", "out"):
        raise ValueError("directions must be 'both' or 'out'")
    g, color, mark = state.graph, state.color, state.mark
    cost = state.cost
    active = np.flatnonzero(~mark)
    if active.size == 0:
        return []

    # Build the colour-respecting undirected edge list once: it is
    # reused every iteration, like the CSR itself would be.
    targets, sources = expand_frontier(
        g.indptr, g.indices, active, return_sources=True
    )
    valid = color[targets] == color[sources]
    u = sources[valid]
    v = targets[valid]
    build_scanned = int(targets.size)

    wcc = np.arange(g.num_nodes, dtype=np.int64)
    iterations = 0
    while True:
        iterations += 1
        before = wcc[active].copy()
        # Hook (minimum-label pull across each edge) plus one optional
        # pointer-jumping compress round (Algorithm 7's second inner
        # loop) — dispatched to the active kernel backend.
        wcc_hook_round(u, v, wcc, active, directions == "both", compress)
        edge_work = u.size * (2 if directions == "both" else 1)
        state.trace.parallel_for(
            phase,
            work=cost.stream(
                nodes=2 * active.size,
                edges=edge_work + (build_scanned if iterations == 1 else 0),
            ),
            items=int(active.size),
            schedule="dynamic",
        )
        if np.array_equal(before, wcc[active]):
            break

    # Full compression so every node points at its root.
    while True:
        jumped = wcc[wcc[active]]
        if np.array_equal(jumped, wcc[active]):
            break
        wcc[active] = jumped

    # One fresh colour per root; group nodes per component.
    labels = wcc[active]
    roots, inverse = np.unique(labels, return_inverse=True)
    colors = state.new_colors(roots.size)
    color[active] = colors[inverse]
    state.trace.parallel_for(
        phase,
        work=cost.stream(nodes=active.size),
        items=int(active.size),
        schedule="static",
    )
    order = np.argsort(inverse, kind="stable")
    boundaries = np.searchsorted(inverse[order], np.arange(roots.size))
    grouped = np.split(active[order], boundaries[1:])
    state.profile.bump("wcc_invocations")
    state.profile.bump("wcc_iterations", iterations)
    state.profile.bump("wcc_components", int(roots.size))
    return [
        (int(colors[i]), grouped[i]) for i in range(roots.size)
    ]
