"""Gabow's path-based SCC algorithm (third sequential baseline).

Cheriyan–Mehlhorn/Gabow's algorithm is the other classic linear-time
SCC method: one DFS with two stacks — ``S`` holds the current path's
vertices, ``B`` holds the boundaries of the path's contracted cycles;
a back edge to an on-path vertex pops ``B`` down to that vertex,
merging the cycle.  Three independently derived implementations
(Tarjan's lowlinks, Kosaraju's two passes, Gabow's stacks) agreeing on
every test graph is about as strong as a sequential oracle gets
without a reference library.

Iterative like the others — recursion depth is O(N) on real graphs
(Section 4.2).
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from ..runtime.trace import WorkTrace

__all__ = ["gabow_scc"]


def gabow_scc(
    g: CSRGraph,
    *,
    trace: WorkTrace | None = None,
    phase: str = "gabow",
    cost: CostModel = DEFAULT_COST_MODEL,
) -> np.ndarray:
    """Return SCC labels via Gabow's two-stack algorithm."""
    n = g.num_nodes
    indptr, indices = g.indptr, g.indices
    preorder = np.full(n, -1, dtype=np.int64)
    labels = np.full(n, -1, dtype=np.int64)
    s_stack: list[int] = []  # path vertices
    b_stack: list[int] = []  # cycle boundaries (preorder numbers' owners)
    cursor = np.zeros(n, dtype=np.int64)
    counter = 0
    scc_count = 0

    for root in range(n):
        if preorder[root] != -1:
            continue
        dfs = [root]
        preorder[root] = counter
        counter += 1
        cursor[root] = indptr[root]
        s_stack.append(root)
        b_stack.append(root)
        while dfs:
            u = dfs[-1]
            ptr = cursor[u]
            if ptr < indptr[u + 1]:
                cursor[u] = ptr + 1
                v = int(indices[ptr])
                if preorder[v] == -1:
                    preorder[v] = counter
                    counter += 1
                    cursor[v] = indptr[v]
                    s_stack.append(v)
                    b_stack.append(v)
                    dfs.append(v)
                elif labels[v] == -1:
                    # back/cross edge into the current path: contract.
                    while preorder[b_stack[-1]] > preorder[v]:
                        b_stack.pop()
            else:
                dfs.pop()
                if b_stack and b_stack[-1] == u:
                    # u is the root of a completed SCC.
                    b_stack.pop()
                    while True:
                        w = s_stack.pop()
                        labels[w] = scc_count
                        if w == u:
                            break
                    scc_count += 1

    if trace is not None:
        trace.sequential(phase, work=cost.dfs(nodes=n, edges=g.num_edges))
    return labels
