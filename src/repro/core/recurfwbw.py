"""Recur-FWBW: the task-parallel recursive FW-BW phase (Algorithm 5).

Each task owns one colour (one partition): pick a pivot, compute its
forward and backward reachable sets by sequential DFS (Section 4.2 —
parallel BFS has too high a fixed cost for these small partitions),
detach the intersection as an SCC, and spawn up to three child tasks
for the FW-only, BW-only and unreached remainders.

Partition representation (Section 4.1's hybrid scheme):

* ``pivot_repr="hybrid"`` — each work item carries an explicit node
  array (the ``std::set`` analogue); pivot selection and remainder
  filtering touch only those nodes.
* ``pivot_repr="scan"`` — work items carry only the colour; every
  pivot selection scans the full colour array.  The paper reports the
  hybrid approach is ~10x faster; ``bench_ablation_hybrid_repr.py``
  reproduces that gap from the recorded work.

Four executors can drain the phase — serial worklist (default; used
for trace collection), the real threaded two-level work queue, and the
plain/supervised process pools — all resolved through the one backend
registry in :mod:`repro.engine.backends`.  Every executor records the
task spawn tree into the trace so the simulated scheduler can replay
it at any thread count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..kernels import dfs_collect_colored
from .state import PHASE_RECUR, SCCState

__all__ = ["WorkItem", "recur_fwbw_task", "run_recur_phase", "collect_color_sets"]


@dataclass
class WorkItem:
    """One queue entry: a colour, optionally its node set, its spawner."""

    color: int
    nodes: Optional[np.ndarray]  # None => scan representation
    parent: int = -1


def recur_fwbw_task(
    state: SCCState,
    item: WorkItem,
    *,
    pivot_strategy: str = "random",
) -> Tuple[List[WorkItem], float]:
    """Execute one Recur-FWBW task; returns (children, task cost)."""
    g, color = state.graph, state.color
    cost = state.cost
    c = item.color

    if item.nodes is None:
        candidates = np.flatnonzero(color == c)
        select_cost = cost.stream(nodes=state.num_nodes)
    else:
        candidates = item.nodes[color[item.nodes] == c]
        select_cost = cost.stream(nodes=item.nodes.size)
    if candidates.size == 0:
        return [], select_cost

    pivot = state.pick(candidates, pivot_strategy)
    # Three fresh colours distinct from the partition colour c (the BW
    # transition-map contract; see state.skip_colour_triple).
    cfw, cbw, cscc = state.alloc_colour_triple(c)

    fw_collected, fw_edges = dfs_collect_colored(
        g.indptr, g.indices, pivot, {c: cfw}, color
    )
    bw_collected, bw_edges = dfs_collect_colored(
        g.in_indptr, g.in_indices, pivot, {c: cbw, cfw: cscc}, color
    )
    scc_nodes = np.asarray(bw_collected[cscc], dtype=np.int64)
    state.mark_scc(scc_nodes, PHASE_RECUR)

    fw_all = np.asarray(fw_collected[cfw], dtype=np.int64)
    fw_only = fw_all[color[fw_all] == cfw]  # SCC members now DONE_COLOR
    bw_only = np.asarray(bw_collected[cbw], dtype=np.int64)
    remain = candidates[color[candidates] == c]

    visited = fw_all.size + bw_only.size + scc_nodes.size
    task_cost = select_cost + cost.dfs(
        nodes=visited, edges=fw_edges + bw_edges
    )
    state.profile.log_task(
        int(scc_nodes.size),
        int(fw_only.size),
        int(bw_only.size),
        int(remain.size),
    )

    children: List[WorkItem] = []
    hybrid = item.nodes is not None
    for child_color, child_nodes in (
        (c, remain),
        (cfw, fw_only),
        (cbw, bw_only),
    ):
        if child_nodes.size:
            children.append(
                WorkItem(
                    color=child_color,
                    nodes=child_nodes if hybrid else None,
                )
            )
    return children, task_cost


def run_recur_phase(
    state: SCCState,
    initial: Sequence[Tuple[int, Optional[np.ndarray]]],
    *,
    queue_k: int = 1,
    phase: str = "recur_fwbw",
    pivot_strategy: str = "random",
    backend: str = "serial",
    num_threads: int = 4,
    supervisor=None,
    deadline: Optional[float] = None,
    session=None,
) -> int:
    """Drain the phase-2 work queue; returns the number of tasks run.

    ``initial`` seeds the queue with ``(color, nodes-or-None)`` items.
    The spawn tree (with per-task costs) is recorded as a
    :class:`~repro.runtime.trace.TaskDAGRecord` for the simulator.

    The executor is resolved through the one backend registry
    (:func:`repro.engine.backends.get_executor`); see that module for
    the serial / threads / processes / supervised semantics and each
    backend's capability flags.  ``supervisor`` optionally carries a
    :class:`~repro.runtime.supervisor.SupervisorConfig` for the
    supervised backend; ``deadline`` (absolute ``time.monotonic()``
    value) bounds the deadline-capable executors, which raise
    :class:`~repro.errors.PhaseTimeoutError` past it.

    ``session`` optionally names a warm
    :class:`~repro.engine.session.GraphSession` whose cached transpose,
    shared-memory mirror and forked worker pool the process executors
    reuse instead of rebuilding per run.
    """
    # Imported lazily: repro.engine imports this module at load time.
    from ..engine.backends import get_executor

    return get_executor(backend).run_phase(
        state,
        initial,
        queue_k=queue_k,
        phase=phase,
        pivot_strategy=pivot_strategy,
        num_workers=num_threads,
        supervisor=supervisor,
        deadline=deadline,
        session=session,
    )


def collect_color_sets(
    state: SCCState, *, phase: str = "collect_sets"
) -> List[Tuple[int, np.ndarray]]:
    """Scan unmarked nodes and group them by colour (Section 4.2).

    "We defer the construction of sets until the end of the trimming
    phase, when we perform a scan of non-marked nodes to construct the
    initial work items."  One vectorized O(N) sweep, recorded as a
    static parallel-for.
    """
    active = np.flatnonzero(~state.mark)
    state.trace.parallel_for(
        phase,
        work=state.cost.stream(nodes=state.num_nodes),
        items=state.num_nodes,
        schedule="static",
    )
    if active.size == 0:
        return []
    colors_active = state.color[active]
    values, inverse = np.unique(colors_active, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    boundaries = np.searchsorted(inverse[order], np.arange(values.size))
    grouped = np.split(active[order], boundaries[1:])
    return [(int(values[i]), grouped[i]) for i in range(values.size)]
