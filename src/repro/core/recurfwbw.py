"""Recur-FWBW: the task-parallel recursive FW-BW phase (Algorithm 5).

Each task owns one colour (one partition): pick a pivot, compute its
forward and backward reachable sets by sequential DFS (Section 4.2 —
parallel BFS has too high a fixed cost for these small partitions),
detach the intersection as an SCC, and spawn up to three child tasks
for the FW-only, BW-only and unreached remainders.

Partition representation (Section 4.1's hybrid scheme):

* ``pivot_repr="hybrid"`` — each work item carries an explicit node
  array (the ``std::set`` analogue); pivot selection and remainder
  filtering touch only those nodes.
* ``pivot_repr="scan"`` — work items carry only the colour; every
  pivot selection scans the full colour array.  The paper reports the
  hybrid approach is ~10x faster; ``bench_ablation_hybrid_repr.py``
  reproduces that gap from the recorded work.

Four executors can drain the phase — serial worklist (default; used
for trace collection), the real threaded two-level work queue, and the
plain/supervised process pools — all resolved through the one backend
registry in :mod:`repro.engine.backends`.  Every executor records the
task spawn tree into the trace so the simulated scheduler can replay
it at any thread count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..kernels import (
    MS_BW_ONLY,
    MS_FW_ONLY,
    MS_MAX_WAVES,
    MS_SCC,
    dfs_collect_colored,
    ms_expand_frontier,
    ms_fwbw_intersect,
    segment_counts,
)
from .state import PHASE_RECUR, SCCState

__all__ = [
    "WorkItem",
    "Phase2BatchPolicy",
    "resolve_batch_policy",
    "plan_batches",
    "multi_source_reach",
    "recur_fwbw_task",
    "recur_fwbw_batch_task",
    "run_recur_phase",
    "collect_color_sets",
]


@dataclass
class WorkItem:
    """One queue entry: a colour, optionally its node set, its spawner."""

    color: int
    nodes: Optional[np.ndarray]  # None => scan representation
    parent: int = -1


@dataclass(frozen=True)
class Phase2BatchPolicy:
    """When and how to route the phase-2 tail through the batched
    multi-source kernel.

    The Recur-FWBW tail is a *small-task storm*: thousands of tiny
    partitions, each paying per-traversal fixed costs.  When the queue
    holds a run of at least ``min_run`` consecutive hybrid items whose
    node sets are at most ``max_item_nodes``, the run (capped at
    ``width`` ≤ 64 — one ``uint64`` lane per pivot) is executed as one
    :func:`recur_fwbw_batch_task` instead of ``width`` sequential
    per-pivot tasks.  Items outside the storm profile (scan
    representation, or large partitions where a single traversal
    amortizes its own overhead) keep the per-pivot path.
    """

    width: int = MS_MAX_WAVES
    min_run: int = 2
    max_item_nodes: Optional[int] = 1024

    def __post_init__(self) -> None:
        if not 1 <= self.width <= MS_MAX_WAVES:
            raise ValueError(
                f"batch width must be in [1, {MS_MAX_WAVES}], "
                f"got {self.width}"
            )
        if self.min_run < 1:
            raise ValueError(f"min_run must be >= 1, got {self.min_run}")
        if self.max_item_nodes is not None and self.max_item_nodes < 1:
            raise ValueError(
                f"max_item_nodes must be positive or None, "
                f"got {self.max_item_nodes}"
            )


def resolve_batch_policy(
    flag: Union[bool, None, Phase2BatchPolicy]
) -> Optional[Phase2BatchPolicy]:
    """Normalize the ``phase2_batch`` knob to a policy (or None = off)."""
    if flag is None or flag is False:
        return None
    if flag is True:
        return Phase2BatchPolicy()
    if isinstance(flag, Phase2BatchPolicy):
        return flag
    raise TypeError(
        f"phase2_batch must be a bool or Phase2BatchPolicy, "
        f"got {type(flag).__name__}"
    )


def _item_batchable(item: WorkItem, policy: Phase2BatchPolicy) -> bool:
    return item.nodes is not None and (
        policy.max_item_nodes is None
        or item.nodes.size <= policy.max_item_nodes
    )


def plan_batches(
    items: Sequence[WorkItem], policy: Optional[Phase2BatchPolicy]
) -> List[Union[WorkItem, List[WorkItem]]]:
    """Group a queue segment into batch runs and per-pivot singles.

    Consecutive batchable items form runs of at most ``policy.width``;
    runs shorter than ``policy.min_run`` degrade to singles.  A run
    also breaks on a repeated partition colour — the batch task
    requires pairwise-distinct colours (each wave owns its colour), and
    while the queue invariant guarantees that, the planner enforces it
    so a hand-built queue cannot silently corrupt a batch.  Entry order
    (and within a run, item order) is queue order, which is what keeps
    the batched serial drain bit-identical to the per-pivot one.
    """
    entries: List[Union[WorkItem, List[WorkItem]]] = []
    run: List[WorkItem] = []
    run_colors: set[int] = set()

    def flush() -> None:
        nonlocal run, run_colors
        if not run:
            return
        if len(run) >= (policy.min_run if policy else 2):
            entries.append(run)
        else:
            entries.extend(run)
        run = []
        run_colors = set()

    if policy is None:
        return list(items)
    for item in items:
        if not _item_batchable(item, policy):
            flush()
            entries.append(item)
            continue
        if len(run) >= policy.width or item.color in run_colors:
            flush()
        run.append(item)
        run_colors.add(item.color)
    flush()
    return entries


def multi_source_reach(
    indptr: np.ndarray,
    indices: np.ndarray,
    in_indptr: np.ndarray,
    in_indices: np.ndarray,
    color: np.ndarray,
    colors: np.ndarray,
    pivots: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run ≤64 colour-confined FW and BW BFS waves to fixpoint.

    Wave *j* starts at ``pivots[j]`` and may only visit nodes of colour
    ``colors[j]`` (plus its own seed).  Returns ``(bits, fw_visited,
    bw_visited)``: the ``uint64`` lane assigned to each input wave and
    the packed per-node visited masks after both fixpoints.  Lanes are
    assigned in ascending colour order (the kernel's binary-search
    layout); ``bits`` maps them back to input order.
    """
    colors = np.asarray(colors, dtype=np.int64)
    pivots = np.asarray(pivots, dtype=np.int64)
    m = colors.size
    if m == 0 or m > MS_MAX_WAVES:
        raise ValueError(f"need 1..{MS_MAX_WAVES} waves, got {m}")
    order = np.argsort(colors, kind="stable")
    wave_colors = colors[order]
    if m > 1 and not (np.diff(wave_colors) > 0).all():
        raise ValueError("batch colours must be pairwise distinct")
    lane_bits = np.left_shift(
        np.uint64(1), np.arange(m, dtype=np.uint64)
    )
    bits = np.empty(m, dtype=np.uint64)
    bits[order] = lane_bits
    n = indptr.shape[0] - 1
    fw_visited = np.zeros(n, dtype=np.uint64)
    bw_visited = np.zeros(n, dtype=np.uint64)
    # Resolve the kernel once: the fixpoint makes one call per BFS
    # level and the per-call dispatcher/validation overhead would
    # otherwise be paid dozens of times per batch.
    from ..kernels import get_kernel

    expand = get_kernel("ms_expand_frontier")
    for visited, ptr, idx in (
        (fw_visited, indptr, indices),
        (bw_visited, in_indptr, in_indices),
    ):
        visited[pivots] = bits
        frontier, fbits = pivots, bits
        while frontier.size:
            frontier, fbits, _ = expand(
                ptr, idx, frontier, fbits, visited, color,
                wave_colors, lane_bits,
            )
    return bits, fw_visited, bw_visited


def recur_fwbw_batch_task(
    state: SCCState,
    items: Sequence[WorkItem],
    *,
    pivot_strategy: str = "random",
) -> List[Tuple[List[WorkItem], float]]:
    """Execute up to 64 Recur-FWBW tasks as one multi-source sweep.

    Bit-identical to running :func:`recur_fwbw_task` on ``items``
    sequentially in order — same pivot RNG draws, same colour-triple
    sequence, same SCC label order, same per-task trace records and
    scanned-edge attribution (DESIGN.md §13 gives the equivalence
    argument).  Returns the per-item ``(children, task_cost)`` list,
    aligned with ``items``.
    """
    g, color, cost = state.graph, state.color, state.cost

    candidates: List[Optional[np.ndarray]] = []
    select_costs: List[float] = []
    for item in items:
        c = item.color
        if item.nodes is None:
            cand = np.flatnonzero(color == c)
            select_costs.append(cost.stream(nodes=state.num_nodes))
        else:
            cand = item.nodes[color[item.nodes] == c]
            select_costs.append(cost.stream(nodes=item.nodes.size))
        candidates.append(cand if cand.size else None)

    live = [i for i, cand in enumerate(candidates) if cand is not None]
    results: List[Optional[Tuple[List[WorkItem], float]]] = [
        None
    ] * len(items)
    for i, cand in enumerate(candidates):
        if cand is None:
            results[i] = ([], select_costs[i])
    if not live:
        return results  # type: ignore[return-value]

    # Same RNG draw sequence as the sequential tasks: one pick per
    # non-empty item, in item order (the RNG and colour counters are
    # independent, so draining one before the other changes nothing).
    pivots = np.array(
        state.pick_many(
            [candidates[i] for i in live], pivot_strategy
        ),
        dtype=np.int64,
    )
    live_colors = np.array(
        [items[i].color for i in live], dtype=np.int64
    )
    triples = state.alloc_colour_triples(int(c) for c in live_colors)

    bits, fw_visited, bw_visited = multi_source_reach(
        g.indptr, g.indices, g.in_indptr, g.in_indices,
        color, live_colors, pivots,
    )

    m = len(live)
    sizes = np.array(
        [candidates[i].size for i in live], dtype=np.int64
    )
    concat = np.concatenate([candidates[i] for i in live])
    cat = ms_fwbw_intersect(
        concat, np.repeat(bits, sizes), fw_visited, bw_visited
    )
    counts_out = segment_counts(g.indptr, concat)
    counts_in = segment_counts(g.in_indptr, concat)

    # One stable sort by (item, category) replaces per-item boolean
    # masks: within a key group the original ascending-candidate order
    # survives, so every extracted chunk is already sorted.  The
    # category-grouped gathers below are then whole-batch operations.
    item_idx = np.repeat(np.arange(m, dtype=np.int64), sizes)
    key = item_idx * 5 + cat
    order = np.argsort(key, kind="stable")
    nodes_sorted = concat[order]
    cat_sorted = cat[order]
    counts = np.bincount(key, minlength=m * 5).reshape(m, 5)
    if counts[:, 4].sum():  # MS_CLAIMED
        # Cannot happen with pairwise-distinct wave colours (a node
        # only ever carries its own partition's bit); a claim here
        # means the wave contract was violated upstream.
        raise RuntimeError(
            "multi-source batch produced cross-wave claims on "
            "disjoint partitions"
        )
    eout = np.bincount(
        key, weights=counts_out, minlength=m * 5
    ).reshape(m, 5)
    ein = np.bincount(
        key, weights=counts_in, minlength=m * 5
    ).reshape(m, 5)
    fw_edges_arr = eout[:, MS_SCC] + eout[:, MS_FW_ONLY]
    bw_edges_arr = ein[:, MS_SCC] + ein[:, MS_BW_ONLY]

    scc_all = nodes_sorted[cat_sorted == MS_SCC]
    fw_all = nodes_sorted[cat_sorted == MS_FW_ONLY]
    bw_all = nodes_sorted[cat_sorted == MS_BW_ONLY]
    scc_sizes = counts[:, MS_SCC]
    fw_sizes = counts[:, MS_FW_ONLY]
    bw_sizes = counts[:, MS_BW_ONLY]
    rem_sizes = counts[:, 3]  # MS_UNREACHED

    # Recolour exactly as the sequential tasks would have left the
    # arrays: FW-only → cfw, BW-only → cbw, SCCs detached in item
    # order (one scatter per array, one lock for the whole batch).
    if fw_all.size:
        color[fw_all] = np.repeat(
            np.array([t[0] for t in triples], dtype=np.int64), fw_sizes
        )
    if bw_all.size:
        color[bw_all] = np.repeat(
            np.array([t[1] for t in triples], dtype=np.int64), bw_sizes
        )
    state.mark_sccs(scc_all, scc_sizes, PHASE_RECUR)

    log_task = state.profile.log_task
    dfs_cost = cost.dfs
    scc_b = np.zeros(m + 1, dtype=np.int64)
    fw_b = np.zeros(m + 1, dtype=np.int64)
    bw_b = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(scc_sizes, out=scc_b[1:])
    np.cumsum(fw_sizes, out=fw_b[1:])
    np.cumsum(bw_sizes, out=bw_b[1:])
    rem_bounds = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(sizes, out=rem_bounds[1:])

    for k, i in enumerate(live):
        n_scc = int(scc_sizes[k])
        fw_only = fw_all[fw_b[k]: fw_b[k + 1]]
        bw_only = bw_all[bw_b[k]: bw_b[k + 1]]
        # The item's key group ends with its MS_UNREACHED chunk.
        hi = rem_bounds[k + 1]
        remain = nodes_sorted[hi - int(rem_sizes[k]): hi]
        cfw, cbw, _cscc = triples[k]
        item = items[i]
        visited = 2 * n_scc + fw_only.size + bw_only.size
        task_cost = select_costs[i] + dfs_cost(
            nodes=visited,
            edges=int(fw_edges_arr[k] + bw_edges_arr[k]),
        )
        log_task(n_scc, fw_only.size, bw_only.size, remain.size)
        hybrid = item.nodes is not None
        children: List[WorkItem] = []
        for child_color, child_nodes in (
            (item.color, remain),
            (cfw, fw_only),
            (cbw, bw_only),
        ):
            if child_nodes.size:
                children.append(
                    WorkItem(
                        color=child_color,
                        nodes=child_nodes if hybrid else None,
                    )
                )
        results[i] = (children, task_cost)
    return results  # type: ignore[return-value]


def recur_fwbw_task(
    state: SCCState,
    item: WorkItem,
    *,
    pivot_strategy: str = "random",
) -> Tuple[List[WorkItem], float]:
    """Execute one Recur-FWBW task; returns (children, task cost)."""
    g, color = state.graph, state.color
    cost = state.cost
    c = item.color

    if item.nodes is None:
        candidates = np.flatnonzero(color == c)
        select_cost = cost.stream(nodes=state.num_nodes)
    else:
        candidates = item.nodes[color[item.nodes] == c]
        select_cost = cost.stream(nodes=item.nodes.size)
    if candidates.size == 0:
        return [], select_cost

    pivot = state.pick(candidates, pivot_strategy)
    # Three fresh colours distinct from the partition colour c (the BW
    # transition-map contract; see state.skip_colour_triple).
    cfw, cbw, cscc = state.alloc_colour_triple(c)

    fw_collected, fw_edges = dfs_collect_colored(
        g.indptr, g.indices, pivot, {c: cfw}, color
    )
    bw_collected, bw_edges = dfs_collect_colored(
        g.in_indptr, g.in_indices, pivot, {c: cbw, cfw: cscc}, color
    )
    scc_nodes = np.asarray(bw_collected[cscc], dtype=np.int64)
    state.mark_scc(scc_nodes, PHASE_RECUR)

    fw_all = np.asarray(fw_collected[cfw], dtype=np.int64)
    fw_only = fw_all[color[fw_all] == cfw]  # SCC members now DONE_COLOR
    bw_only = np.asarray(bw_collected[cbw], dtype=np.int64)
    remain = candidates[color[candidates] == c]

    visited = fw_all.size + bw_only.size + scc_nodes.size
    task_cost = select_cost + cost.dfs(
        nodes=visited, edges=fw_edges + bw_edges
    )
    state.profile.log_task(
        int(scc_nodes.size),
        int(fw_only.size),
        int(bw_only.size),
        int(remain.size),
    )

    children: List[WorkItem] = []
    hybrid = item.nodes is not None
    for child_color, child_nodes in (
        (c, remain),
        (cfw, fw_only),
        (cbw, bw_only),
    ):
        if child_nodes.size:
            children.append(
                WorkItem(
                    color=child_color,
                    nodes=child_nodes if hybrid else None,
                )
            )
    return children, task_cost


def run_recur_phase(
    state: SCCState,
    initial: Sequence[Tuple[int, Optional[np.ndarray]]],
    *,
    queue_k: int = 1,
    phase: str = "recur_fwbw",
    pivot_strategy: str = "random",
    backend: str = "serial",
    num_threads: int = 4,
    supervisor=None,
    deadline: Optional[float] = None,
    session=None,
    phase2_batch: Union[bool, Phase2BatchPolicy] = False,
) -> int:
    """Drain the phase-2 work queue; returns the number of tasks run.

    ``initial`` seeds the queue with ``(color, nodes-or-None)`` items.
    The spawn tree (with per-task costs) is recorded as a
    :class:`~repro.runtime.trace.TaskDAGRecord` for the simulator.

    The executor is resolved through the one backend registry
    (:func:`repro.engine.backends.get_executor`); see that module for
    the serial / threads / processes / supervised semantics and each
    backend's capability flags.  ``supervisor`` optionally carries a
    :class:`~repro.runtime.supervisor.SupervisorConfig` for the
    supervised backend; ``deadline`` (absolute ``time.monotonic()``
    value) bounds the deadline-capable executors, which raise
    :class:`~repro.errors.PhaseTimeoutError` past it.

    ``session`` optionally names a warm
    :class:`~repro.engine.session.GraphSession` whose cached transpose,
    shared-memory mirror and forked worker pool the process executors
    reuse instead of rebuilding per run.

    ``phase2_batch`` turns on the bit-parallel multi-source tail
    (``True`` for the default :class:`Phase2BatchPolicy`, or a policy
    instance): small-task storms are drained in groups of ≤64 pivots
    per CSR sweep, bit-identically to the per-pivot path.
    """
    # Imported lazily: repro.engine imports this module at load time.
    from ..engine.backends import get_executor

    return get_executor(backend).run_phase(
        state,
        initial,
        queue_k=queue_k,
        phase=phase,
        pivot_strategy=pivot_strategy,
        num_workers=num_threads,
        supervisor=supervisor,
        deadline=deadline,
        session=session,
        phase2_batch=resolve_batch_policy(phase2_batch),
    )


def collect_color_sets(
    state: SCCState, *, phase: str = "collect_sets"
) -> List[Tuple[int, np.ndarray]]:
    """Scan unmarked nodes and group them by colour (Section 4.2).

    "We defer the construction of sets until the end of the trimming
    phase, when we perform a scan of non-marked nodes to construct the
    initial work items."  One vectorized O(N) sweep, recorded as a
    static parallel-for.
    """
    active = np.flatnonzero(~state.mark)
    state.trace.parallel_for(
        phase,
        work=state.cost.stream(nodes=state.num_nodes),
        items=state.num_nodes,
        schedule="static",
    )
    if active.size == 0:
        return []
    colors_active = state.color[active]
    values, inverse = np.unique(colors_active, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    boundaries = np.searchsorted(inverse[order], np.arange(values.size))
    grouped = np.split(active[order], boundaries[1:])
    return [(int(values[i]), grouped[i]) for i in range(values.size)]
