"""Coloring-based parallel SCC detection (Orzan / MultiStep comparator).

The paper's related work compares against FW-BW-style decompositions;
the other major parallel SCC family is *coloring* (Orzan 2004; used as
the tail phase of Slota et al.'s MultiStep, IPDPS 2014 — work that
directly follows this paper).  Implemented here as an extension
comparator:

repeat until every node is detached:
  1. every active node's colour starts as its own id;
  2. propagate the **maximum** colour along out-edges to a fixed point
     (data-parallel ``np.maximum`` relaxations);
  3. every node that kept its own colour is a *root*; the SCC of root
     ``r`` is the set of nodes backward-reachable from ``r`` through
     nodes coloured ``r`` — computed for ALL roots simultaneously with
     one multi-source reverse BFS (colour equality confines each
     search to its own region);
  4. detach the found SCCs and repeat on what is left.

Coloring shines when there are many medium SCCs (it finds one SCC per
root per round, thousands at a time) and struggles when one giant SCC
forces whole-graph propagation rounds — the mirror image of FW-BW's
trade-offs, which is what makes it an interesting comparator for the
Figure 6-style benches (``benchmarks/bench_ext_comparators.py``).
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from ..traversal.frontier import expand_frontier
from .result import SCCResult
from .state import PHASE_COLORING, SCCState
from .trim import par_trim

__all__ = ["coloring_scc", "color_propagation_round"]


def color_propagation_round(
    state: SCCState, active: np.ndarray, *, phase: str
) -> tuple[np.ndarray, int]:
    """One coloring round: max-propagation + SCC extraction.

    Returns ``(colors, iterations)`` where ``colors[v]`` is the final
    propagated colour of each active node (its SCC root candidate).
    Marks every discovered SCC in ``state``.
    """
    g, cost = state.graph, state.cost
    n = g.num_nodes

    # Edge list among active nodes (both endpoints active).
    targets, sources = expand_frontier(
        g.indptr, g.indices, active, return_sources=True
    )
    is_active = np.zeros(n, dtype=bool)
    is_active[active] = True
    keep = is_active[targets]
    u, v = sources[keep], targets[keep]

    colors = np.full(n, -1, dtype=np.int64)
    colors[active] = active  # own id
    iterations = 0
    while True:
        iterations += 1
        before = colors[active].copy()
        # forward max-propagation: colour flows along u -> v
        np.maximum.at(colors, v, colors[u])
        state.trace.parallel_for(
            phase,
            work=cost.stream(nodes=active.size, edges=u.size),
            items=int(active.size),
            schedule="dynamic",
        )
        if np.array_equal(before, colors[active]):
            break

    # Roots kept their own colour.  Multi-source reverse BFS: node w is
    # absorbed into root r's SCC iff w is coloured r and reaches r
    # (equivalently r reaches w backwards) through colour-r nodes.
    in_scc = np.zeros(n, dtype=bool)
    roots = active[colors[active] == active]
    in_scc[roots] = True
    frontier = roots
    while frontier.size:
        t, s = expand_frontier(
            g.in_indptr, g.in_indices, frontier, return_sources=True
        )
        state.trace.parallel_for(
            phase,
            work=cost.bfs(nodes=frontier.size, edges=t.size),
            items=int(frontier.size),
        )
        if t.size == 0:
            break
        ok = (~in_scc[t]) & (colors[t] == colors[s]) & is_active[t]
        nxt = np.unique(t[ok])
        if nxt.size == 0:
            break
        in_scc[nxt] = True
        frontier = nxt

    # Detach: group SCC members by their root colour.
    members = active[in_scc[active]]
    root_of = colors[members]
    order = np.argsort(root_of, kind="stable")
    members = members[order]
    root_sorted = root_of[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], root_sorted[1:] != root_sorted[:-1]))
    )
    groups = np.split(members, boundaries[1:])
    for grp in groups:
        state.mark_scc(grp, PHASE_COLORING)
    state.trace.parallel_for(
        phase,
        work=cost.stream(nodes=members.size),
        items=max(len(groups), 1),
    )
    return colors, iterations


def coloring_scc(
    g: CSRGraph,
    *,
    seed: int | None = 0,
    cost: CostModel = DEFAULT_COST_MODEL,
    use_trim: bool = True,
    max_rounds: int | None = None,
) -> SCCResult:
    """Detect SCCs by iterated colour propagation.

    ``use_trim`` runs Par-Trim between rounds (as MultiStep does);
    ``max_rounds`` bounds the outer loop (None = until done).
    """
    state = SCCState(g, seed=seed, cost=cost)
    rounds = 0
    with state.profile.wall_timer("coloring"):
        if use_trim:
            par_trim(state)
        while True:
            active = np.flatnonzero(~state.mark)
            state.trace.parallel_for(
                "coloring",
                work=cost.stream(nodes=g.num_nodes),
                items=g.num_nodes,
                schedule="static",
            )
            if active.size == 0:
                break
            if max_rounds is not None and rounds >= max_rounds:
                raise RuntimeError(
                    f"coloring did not converge in {max_rounds} rounds"
                )
            rounds += 1
            color_propagation_round(state, active, phase="coloring")
            if use_trim:
                par_trim(state)
    state.profile.bump("coloring_rounds", rounds)
    state.check_done()
    return SCCResult(
        labels=state.labels,
        method="coloring",
        profile=state.profile,
        phase_of=state.phase_of,
    )
