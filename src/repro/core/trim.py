"""Par-Trim: parallel iterative removal of size-1 SCCs (Algorithm 4).

A node whose in-degree or out-degree is zero *within its current
partition* (same colour, not yet detached) cannot lie on a cycle, so it
is a trivial SCC.  Trimming one node can expose another (Figure 1(b)'s
``c``, then ``b``, then ``a``), so the step iterates to a fixed point.

Two implementations:

* :func:`par_trim` — production version.  Effective degrees are
  computed once with a vectorized edge sweep, then maintained
  *incrementally*: each trimmed node decrements its still-attached
  neighbours' counters, and only nodes whose counter reaches zero are
  re-examined.  Total work is O(edges incident to trimmed nodes) after
  the first sweep.
* :func:`par_trim_rescan` — the paper's Algorithm 4 as literally
  written: every iteration rescans every remaining node.  Kept for the
  equivalence tests and the incremental-vs-rescan ablation bench.

Both record one parallel-for per iteration; the first sweep is the
big data-parallel region that gives Par-Trim its Figure 7 scaling.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..kernels import effective_degrees_arrays, trim_decrement
from .state import PHASE_TRIM, SCCState

__all__ = [
    "effective_degrees",
    "trim_candidates",
    "par_trim",
    "par_trim_rescan",
]


def effective_degrees(
    state: SCCState, nodes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Colour-restricted (out, in) degrees of ``nodes``.

    Counts only neighbours with the same colour; by the DONE_COLOR
    invariant (state.py) that also excludes detached nodes.  Returns
    dense arrays (valid only at ``nodes``) plus the number of adjacency
    entries scanned (for work accounting).  Dispatched through the
    kernel layer — this is Par-Trim's big data-parallel region.
    """
    g = state.graph
    return effective_degrees_arrays(
        g.indptr, g.indices, g.in_indptr, g.in_indices, nodes, state.color
    )


def trim_candidates(
    eff_out: np.ndarray, eff_in: np.ndarray, nodes: np.ndarray
) -> np.ndarray:
    """Nodes of ``nodes`` with zero effective in- or out-degree."""
    return nodes[(eff_out[nodes] == 0) | (eff_in[nodes] == 0)]




def par_trim(
    state: SCCState,
    *,
    phase: str = "par_trim",
    restrict: np.ndarray | None = None,
) -> int:
    """Trim size-1 SCCs to a fixed point; returns the number trimmed.

    ``restrict`` (bool mask) optionally limits trimming to a node
    subset (tests only — the algorithms always trim globally).
    """
    g, color, mark = state.graph, state.color, state.mark
    cost = state.cost
    if restrict is None:
        active = np.flatnonzero(~mark)
    else:
        active = np.flatnonzero(~mark & restrict)
    # The initial full sweep: degree counting over every active node.
    eff_out, eff_in, scanned = effective_degrees(state, active)
    state.trace.parallel_for(
        phase,
        work=cost.stream(nodes=2 * active.size, edges=scanned),
        items=int(active.size),
        schedule="dynamic",
    )
    cand = trim_candidates(eff_out, eff_in, active)
    trimmed = 0
    iterations = 0
    while cand.size:
        iterations += 1
        trimmed += int(cand.size)
        old_colors = color[cand].copy()
        state.mark_singletons(cand, PHASE_TRIM)
        # Decrement still-attached neighbours' counters.
        touched_parts = []
        iter_scanned = 0
        for indptr, indices, eff in (
            (g.indptr, g.indices, eff_in),  # out-edge u->v lowers in(v)
            (g.in_indptr, g.in_indices, eff_out),
        ):
            # A neighbour is decremented iff it still carries the colour
            # the trimmed node had (marked neighbours carry DONE_COLOR).
            hit, scanned = trim_decrement(
                indptr, indices, cand, old_colors, color, eff
            )
            iter_scanned += scanned
            if hit.size:
                touched_parts.append(hit)
        if touched_parts:
            touched = np.unique(np.concatenate(touched_parts))
            touched = touched[~mark[touched]]
            if restrict is not None:
                touched = touched[restrict[touched]]
        else:
            touched = np.empty(0, dtype=np.int64)
        state.trace.parallel_for(
            phase,
            work=cost.stream(nodes=cand.size, edges=iter_scanned),
            items=int(cand.size),
            schedule="dynamic",
        )
        cand = trim_candidates(eff_out, eff_in, touched)
    state.profile.bump("trim_invocations")
    state.profile.bump("trim_iterations", iterations)
    state.profile.bump("trimmed_nodes", trimmed)
    return trimmed


def par_trim_rescan(
    state: SCCState,
    *,
    phase: str = "par_trim",
    restrict: np.ndarray | None = None,
) -> int:
    """Algorithm 4 verbatim: full rescan every iteration (ablation)."""
    mark = state.mark
    cost = state.cost
    trimmed = 0
    iterations = 0
    while True:
        if restrict is None:
            active = np.flatnonzero(~mark)
        else:
            active = np.flatnonzero(~mark & restrict)
        if active.size == 0:
            break
        eff_out, eff_in, scanned = effective_degrees(state, active)
        state.trace.parallel_for(
            phase,
            work=cost.stream(nodes=2 * active.size, edges=scanned),
            items=int(active.size),
            schedule="dynamic",
        )
        cand = trim_candidates(eff_out, eff_in, active)
        if cand.size == 0:
            break
        iterations += 1
        trimmed += int(cand.size)
        state.mark_singletons(cand, PHASE_TRIM)
    state.profile.bump("trim_invocations")
    state.profile.bump("trim_iterations", iterations)
    state.profile.bump("trimmed_nodes", trimmed)
    return trimmed
