"""MultiStep SCC detection (Slota, Rajamanickam, Madduri — comparator).

MultiStep (IPDPS 2014) is the best-known follow-on to this paper's
method: Trim, then ONE FW-BW step from a max-degree pivot (the hub is
almost surely inside the giant SCC), then the *coloring* algorithm for
everything that remains — replacing both the recursive FW-BW phase and
the WCC step.  Implemented as an extension comparator so the benches
can place the paper's Method 2 in the context of the work it inspired.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from .coloring import color_propagation_round
from .parfwbw import par_fwbw
from .result import SCCResult
from .state import SCCState
from .trim import par_trim

__all__ = ["multistep_scc"]


def multistep_scc(
    g: CSRGraph,
    *,
    seed: int | None = 0,
    cost: CostModel = DEFAULT_COST_MODEL,
    giant_threshold: float = 0.01,
    max_rounds: int | None = None,
) -> SCCResult:
    """Trim -> one max-degree-pivot FW-BW -> coloring until done."""
    state = SCCState(g, seed=seed, cost=cost)
    with state.profile.wall_timer("par_trim"):
        par_trim(state)
    with state.profile.wall_timer("par_fwbw"):
        par_fwbw(
            state,
            0,
            giant_threshold=giant_threshold,
            max_trials=1,
            pivot_strategy="maxdegree",
        )
    with state.profile.wall_timer("par_trim"):
        par_trim(state)
    rounds = 0
    with state.profile.wall_timer("coloring"):
        while True:
            active = np.flatnonzero(~state.mark)
            state.trace.parallel_for(
                "coloring",
                work=cost.stream(nodes=g.num_nodes),
                items=g.num_nodes,
                schedule="static",
            )
            if active.size == 0:
                break
            if max_rounds is not None and rounds >= max_rounds:
                raise RuntimeError(
                    f"multistep coloring did not converge in {max_rounds} rounds"
                )
            rounds += 1
            color_propagation_round(state, active, phase="coloring")
            par_trim(state, phase="coloring")
    state.profile.bump("coloring_rounds", rounds)
    state.check_done()
    return SCCResult(
        labels=state.labels,
        method="multistep",
        profile=state.profile,
        phase_of=state.phase_of,
    )
