"""Phase plans: the Method 1/2 pipelines as explicit phase sequences.

Both paper pipelines are straight-line sequences of phases over one
:class:`~repro.core.state.SCCState`.  Expressing them as a list of
:class:`PhaseSpec` (instead of inline calls) gives the run-lifecycle
layer (:mod:`repro.runtime.lifecycle`) the boundaries it needs: a
checkpoint can be written after any phase, a resumed run re-enters at
the first incomplete phase, and a per-phase deadline or backend
degradation applies to exactly one phase.

The plain runners (:func:`repro.core.method1.method1_scc`, ...) iterate
the same plan with no checkpointing, so there is exactly one definition
of each pipeline.

Phases communicate through a ``ctx`` mapping.  The only cross-phase
payload today is ``ctx["queue"]`` — the phase-2 work items, a list of
``(color, nodes-or-None)`` pairs — which the lifecycle layer serializes
into checkpoints.  Executors read two optional overrides:
``ctx["backend"]`` (set by the harness when degrading a failing
backend) and ``ctx["deadline"]`` (an absolute ``time.monotonic()``
bound forwarded to deadline-aware executors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, MutableMapping, Sequence

from .state import SCCState

__all__ = ["PhaseSpec", "run_plan"]


@dataclass(frozen=True)
class PhaseSpec:
    """One pipeline phase.

    ``name`` is unique within a plan (checkpoint identity); ``timer``
    is the wall-timer / trace label, shared by repeated phases (both
    trims accumulate under ``"par_trim"``, exactly as the inline
    pipelines did).  ``uses_backend`` marks the phase whose executor
    can fail independently of the algorithm (the phase-2 worker pool)
    and is therefore eligible for backend degradation.
    """

    name: str
    timer: str
    fn: Callable[[SCCState, MutableMapping], None]
    uses_backend: bool = False


def run_plan(
    state: SCCState,
    plan: Sequence[PhaseSpec],
    ctx: MutableMapping | None = None,
) -> MutableMapping:
    """Execute ``plan`` in order with per-phase wall timers (no
    checkpointing — the lifecycle harness wraps this with its own
    loop).  Returns the final ``ctx``."""
    ctx = {} if ctx is None else ctx
    for ph in plan:
        with state.profile.wall_timer(ph.timer):
            ph.fn(state, ctx)
    return ctx
