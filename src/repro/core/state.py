"""Shared algorithm state: the ``Color`` and ``mark`` arrays.

Section 4.1: the CSR graph is never mutated.  Instead, ``mark`` (an
O(N) boolean array) flags nodes whose SCC has been identified —
"setting the mark value of a node has the same effect as removing the
node" — and ``Color`` (an O(N) integer array) encodes the current
partitioning: nodes of different colours are considered disconnected
even when an edge exists between them.

:class:`SCCState` adds the reproduction's bookkeeping on top: the
output label array, per-node phase attribution (Figure 8), the work
trace, the execution profile, and a seeded RNG for pivot selection.
All mutating entry points take an internal lock so the phase-2 task
kernel can run under the real threaded work queue.

Invariant maintained throughout: **a marked node's colour is
``DONE_COLOR`` (-1)**, which no active partition ever uses, so a
traversal that filters by colour equality automatically prunes at
detached nodes without consulting ``mark``.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..errors import ReproError
from ..graph import CSRGraph
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from ..runtime.metrics import ExecutionProfile

__all__ = [
    "SCCState",
    "StateSnapshot",
    "StateInvariantError",
    "skip_colour_triple",
    "DONE_COLOR",
    "PHASE_TRIM",
    "PHASE_TRIM2",
    "PHASE_FWBW",
    "PHASE_RECUR",
    "PHASE_NAMES",
]

#: colour of detached (marked) nodes; never allocated to a partition.
DONE_COLOR = -1

#: Figure 8 phase attribution ids.
PHASE_TRIM = 0
PHASE_TRIM2 = 1
PHASE_FWBW = 2
PHASE_RECUR = 3
PHASE_COLORING = 4  # extension comparators (coloring / MultiStep)
PHASE_NAMES = {
    PHASE_TRIM: "trim",
    PHASE_TRIM2: "trim2",
    PHASE_FWBW: "par_fwbw",
    PHASE_RECUR: "recur_fwbw",
    PHASE_COLORING: "coloring",
}


def skip_colour_triple(
    start: int, skip: int
) -> tuple[tuple[int, int, int], int]:
    """Allocate three consecutive colours from ``start``, skipping ``skip``.

    Returns ``((cfw, cbw, cscc), next_start)``.  Every Recur-FWBW task
    needs three fresh colours distinct from its own partition colour
    ``skip``: the BW transition map ``{c: cbw, cfw: cscc}`` is only
    well-defined when no target colour is also a source (kernel-layer
    contract — a collision would let the traversal re-visit freshly
    recoloured nodes).  Collisions only arise when callers painted
    colours at or above the allocator's watermark by hand; skipping
    costs nothing in the normal pipelines.

    This is the one allocation sequence shared by every executor: the
    serial/threads drivers call it under the state lock
    (:meth:`SCCState.alloc_colour_triple`), workers under the shared
    ``color_counter`` lock, and the supervisor's master loop on its
    privately owned counter.
    """
    triple = []
    nxt = start
    while len(triple) < 3:
        if nxt != skip:
            triple.append(nxt)
        nxt += 1
    return (triple[0], triple[1], triple[2]), nxt


class StateInvariantError(ReproError, RuntimeError):
    """Raised when :meth:`SCCState.check_invariants` finds corruption."""

    exit_code = 15


@dataclass(frozen=True)
class StateSnapshot:
    """A consistent copy of the mutable arrays and counters.

    The fault-tolerant executor captures one before the task phase so
    it can roll the state back and degrade to the serial driver when
    the process pool is beyond repair (see
    :mod:`repro.runtime.supervisor`).
    """

    color: np.ndarray
    mark: np.ndarray
    labels: np.ndarray
    phase_of: np.ndarray
    next_color: int
    num_sccs: int


class SCCState:
    """Mutable state threaded through one SCC-detection run."""

    def __init__(
        self,
        graph: CSRGraph,
        *,
        seed: int | None = 0,
        cost: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        n = graph.num_nodes
        self.graph = graph
        self.color = np.zeros(n, dtype=np.int64)
        self.mark = np.zeros(n, dtype=bool)
        #: SCC id per node; -1 until identified.
        self.labels = np.full(n, -1, dtype=np.int64)
        #: phase id (PHASE_*) that identified each node's SCC.
        self.phase_of = np.full(n, -1, dtype=np.int8)
        self.cost = cost
        self.profile = ExecutionProfile()
        self.rng = np.random.default_rng(seed)
        self._next_color = 1
        self._num_sccs = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_sccs(self) -> int:
        return self._num_sccs

    @property
    def trace(self):
        return self.profile.trace

    def new_color(self) -> int:
        """Allocate a fresh partition colour (thread-safe)."""
        with self._lock:
            c = self._next_color
            self._next_color += 1
            return c

    def new_colors(self, count: int) -> np.ndarray:
        """Allocate ``count`` consecutive colours (thread-safe)."""
        with self._lock:
            base = self._next_color
            self._next_color += count
        return np.arange(base, base + count, dtype=np.int64)

    def alloc_colour_triple(self, skip: int) -> tuple[int, int, int]:
        """Allocate a task's ``(cfw, cbw, cscc)`` triple, skipping
        ``skip`` (thread-safe); see :func:`skip_colour_triple`."""
        with self._lock:
            triple, self._next_color = skip_colour_triple(
                self._next_color, skip
            )
        return triple

    def alloc_colour_triples(
        self, skips: Iterable[int]
    ) -> list[tuple[int, int, int]]:
        """Allocate one ``(cfw, cbw, cscc)`` triple per entry of
        ``skips`` under a single lock acquisition.

        The triples come out of the same sequential
        :func:`skip_colour_triple` chain the per-task
        :meth:`alloc_colour_triple` walks, so a batch of *k* tasks
        consumes exactly the colours *k* sequential calls would — the
        property that keeps the batched phase-2 path bit-identical to
        the per-pivot one.
        """
        out: list[tuple[int, int, int]] = []
        with self._lock:
            nxt = self._next_color
            for skip in skips:
                triple, nxt = skip_colour_triple(nxt, skip)
                out.append(triple)
            self._next_color = nxt
        return out

    # ------------------------------------------------------------------
    def mark_scc(self, nodes: np.ndarray | Iterable[int], phase: int) -> int:
        """Detach ``nodes`` as one SCC; returns its label (thread-safe)."""
        nodes = np.asarray(
            nodes if isinstance(nodes, np.ndarray) else list(nodes),
            dtype=np.int64,
        )
        if nodes.size == 0:
            raise ValueError("an SCC cannot be empty")
        with self._lock:
            sid = self._num_sccs
            self._num_sccs += 1
        self.labels[nodes] = sid
        self.mark[nodes] = True
        self.color[nodes] = DONE_COLOR
        self.phase_of[nodes] = phase
        return sid

    def mark_sccs(
        self, nodes: np.ndarray, sizes: np.ndarray, phase: int
    ) -> int:
        """Detach several SCCs at once; returns the first label.

        ``nodes`` is the concatenation of the member arrays and
        ``sizes`` the per-SCC lengths (all positive).  SCC *i* of the
        batch receives label ``base + i`` — the ids *k* sequential
        :meth:`mark_scc` calls would have handed out — with one lock
        acquisition and one scatter per array instead of *k*.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        if sizes.size == 0:
            raise ValueError("mark_sccs needs at least one SCC")
        if (sizes <= 0).any():
            raise ValueError("an SCC cannot be empty")
        if int(sizes.sum()) != nodes.size:
            raise ValueError(
                f"sizes sum to {int(sizes.sum())} but {nodes.size} "
                f"nodes were given"
            )
        with self._lock:
            base = self._num_sccs
            self._num_sccs += int(sizes.size)
        self.labels[nodes] = np.repeat(
            np.arange(base, base + sizes.size, dtype=np.int64), sizes
        )
        self.mark[nodes] = True
        self.color[nodes] = DONE_COLOR
        self.phase_of[nodes] = phase
        return base

    def mark_singletons(self, nodes: np.ndarray, phase: int) -> None:
        """Detach each node of ``nodes`` as its own size-1 SCC (vectorized)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return
        with self._lock:
            base = self._num_sccs
            self._num_sccs += int(nodes.size)
        self.labels[nodes] = np.arange(
            base, base + nodes.size, dtype=np.int64
        )
        self.mark[nodes] = True
        self.color[nodes] = DONE_COLOR
        self.phase_of[nodes] = phase

    def mark_pairs(self, a: np.ndarray, b: np.ndarray, phase: int) -> None:
        """Detach each ``(a[i], b[i])`` pair as a size-2 SCC (vectorized)."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.shape != b.shape:
            raise ValueError("pair arrays must have equal shape")
        if a.size == 0:
            return
        with self._lock:
            base = self._num_sccs
            self._num_sccs += int(a.size)
        ids = np.arange(base, base + a.size, dtype=np.int64)
        for arr in (a, b):
            self.labels[arr] = ids
            self.mark[arr] = True
            self.color[arr] = DONE_COLOR
            self.phase_of[arr] = phase

    def color_watermark(self) -> int:
        """The next colour value that would be allocated (no bump)."""
        with self._lock:
            return self._next_color

    def sync_counters(self, num_sccs: int, next_color: int) -> None:
        """Adopt counter values produced by an external executor
        (the multiprocessing backend runs its own shared counters)."""
        with self._lock:
            if num_sccs < self._num_sccs or next_color < self._next_color:
                raise ValueError("counters may only move forward")
            self._num_sccs = num_sccs
            self._next_color = next_color

    def pick(self, candidates: np.ndarray, strategy: str) -> int:
        """Pivot selection through the state's seeded RNG (thread-safe)."""
        from .pivot import choose_pivot  # local import avoids a cycle

        with self._lock:
            return choose_pivot(candidates, strategy, self.rng, self.graph)

    def pick_many(self, candidate_sets, strategy: str) -> list[int]:
        """One pivot per candidate set, under a single lock acquisition.

        Draws from the RNG in list order — exactly the sequence that
        many :meth:`pick` calls would consume, which keeps the batched
        phase-2 path's pivots bit-identical to the per-pivot path's.
        """
        from .pivot import choose_pivot  # local import avoids a cycle

        with self._lock:
            return [
                choose_pivot(c, strategy, self.rng, self.graph)
                for c in candidate_sets
            ]

    # ------------------------------------------------------------------
    def active_nodes(self) -> np.ndarray:
        """Unmarked node ids (a full O(N) scan — callers record it)."""
        return np.flatnonzero(~self.mark)

    def unfinished(self) -> int:
        """Count of nodes whose SCC is not yet identified."""
        return int(self.num_nodes - self.mark.sum())

    def check_done(self) -> None:
        """Raise if any node is left without a label (algorithm bug)."""
        missing = int((self.labels < 0).sum())
        if missing:
            raise RuntimeError(
                f"{missing} nodes left unlabelled after SCC detection"
            )

    # ------------------------------------------------------------------
    def rng_state(self) -> dict:
        """JSON-serializable snapshot of the pivot RNG.

        Restoring it with :meth:`set_rng_state` continues the exact
        pivot sequence — the property that makes a checkpointed run
        resume bit-identically to an uninterrupted one.
        """
        with self._lock:
            return copy.deepcopy(self.rng.bit_generator.state)

    def set_rng_state(self, st: dict) -> None:
        """Restore an RNG snapshot taken by :meth:`rng_state`."""
        with self._lock:
            self.rng.bit_generator.state = copy.deepcopy(st)

    # ------------------------------------------------------------------
    def snapshot(self) -> StateSnapshot:
        """Copy the mutable arrays + counters (rollback point)."""
        with self._lock:
            return StateSnapshot(
                color=self.color.copy(),
                mark=self.mark.copy(),
                labels=self.labels.copy(),
                phase_of=self.phase_of.copy(),
                next_color=self._next_color,
                num_sccs=self._num_sccs,
            )

    def restore(self, snap: StateSnapshot) -> None:
        """Roll the state back to ``snap`` (counters may move backward:
        this discards everything a failed executor did)."""
        with self._lock:
            self.color[:] = snap.color
            self.mark[:] = snap.mark
            self.labels[:] = snap.labels
            self.phase_of[:] = snap.phase_of
            self._next_color = snap.next_color
            self._num_sccs = snap.num_sccs

    # ------------------------------------------------------------------
    def check_invariants(
        self, *, require_complete: bool = True, cross_check: bool = False
    ) -> None:
        """Prove the label state is consistent; raise otherwise.

        Structural checks (O(N) / O(N log N)):

        * ``mark`` and ``color == DONE_COLOR`` agree exactly (the
          module-docstring invariant);
        * every marked node has a label and a phase attribution;
        * no unmarked node has a label;
        * with ``require_complete`` every node is marked and the label
          ids are exactly ``0 .. num_sccs-1`` with no holes.

        With ``cross_check`` the labels are additionally compared
        against an independent Tarjan run (O(N + M)) — the recovery
        path uses this so a degraded or retried run is *proven* to have
        produced the true SCC partition, never assumed.
        """
        detached = self.color == DONE_COLOR
        if not np.array_equal(self.mark, detached):
            bad = int(np.count_nonzero(self.mark != detached))
            raise StateInvariantError(
                f"{bad} nodes where mark and DONE_COLOR disagree"
            )
        if np.any(self.labels[self.mark] < 0):
            raise StateInvariantError("marked node without an SCC label")
        if np.any(self.phase_of[self.mark] < 0):
            raise StateInvariantError("marked node without phase attribution")
        if np.any(self.labels[~self.mark] >= 0):
            raise StateInvariantError("unmarked node carries an SCC label")
        if require_complete:
            unresolved = int(np.count_nonzero(~self.mark))
            if unresolved:
                raise StateInvariantError(
                    f"{unresolved} nodes still unresolved"
                )
            if self.num_nodes:
                ids = np.unique(self.labels)
                if ids[0] != 0 or ids[-1] != self._num_sccs - 1 or ids.size != self._num_sccs:
                    raise StateInvariantError(
                        f"label ids not dense: {ids.size} distinct ids, "
                        f"range [{ids[0]}, {ids[-1]}], "
                        f"num_sccs={self._num_sccs}"
                    )
        if cross_check and self.num_nodes:
            from .result import same_partition  # local: avoids a cycle
            from .tarjan import tarjan_scc

            if not same_partition(self.labels, tarjan_scc(self.graph)):
                raise StateInvariantError(
                    "labels disagree with the Tarjan oracle partition"
                )
