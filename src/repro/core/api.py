"""Public API: one entry point for every SCC algorithm in the library."""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..graph import CSRGraph
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from ..runtime.metrics import ExecutionProfile
from ..runtime.trace import WorkTrace
from .baseline import baseline_scc
from .coloring import coloring_scc
from .fleischer import fwbw_scc
from .gabow import gabow_scc
from .kosaraju import kosaraju_scc
from .method1 import method1_scc
from .method2 import method2_scc
from .multistep import multistep_scc
from .result import SCCResult
from .tarjan import tarjan_scc

__all__ = ["strongly_connected_components", "METHODS"]


def _sequential(
    fn: Callable[..., np.ndarray], name: str
) -> Callable[..., SCCResult]:
    def run(g: CSRGraph, *, cost: CostModel = DEFAULT_COST_MODEL, **kwargs) -> SCCResult:
        profile = ExecutionProfile()
        with profile.wall_timer(name):
            labels = fn(g, trace=profile.trace, phase=name, cost=cost)
        return SCCResult(labels=labels, method=name, profile=profile)

    return run


#: method name -> runner.  The three paper algorithms accept the full
#: keyword set (seed, giant_threshold, pivot options, backend, ...);
#: the sequential baselines accept only ``cost``.
METHODS: Dict[str, Callable[..., SCCResult]] = {
    "tarjan": _sequential(tarjan_scc, "tarjan"),
    "kosaraju": _sequential(kosaraju_scc, "kosaraju"),
    "gabow": _sequential(gabow_scc, "gabow"),
    "baseline": baseline_scc,
    "method1": method1_scc,
    "method2": method2_scc,
    # extension comparators (not in the paper's evaluation):
    "fwbw": fwbw_scc,  # Fleischer et al. 2000: no Trim at all
    "coloring": coloring_scc,  # Orzan-style colour propagation
    "multistep": multistep_scc,  # Slota et al. 2014 follow-on
}


def strongly_connected_components(
    g: CSRGraph, method: str = "method2", **kwargs
) -> SCCResult:
    """Detect the strongly connected components of ``g``.

    Parameters
    ----------
    g:
        The input digraph (never mutated).
    method:
        ``"tarjan"`` — the optimal sequential algorithm (the paper's
        speedup denominator); ``"kosaraju"`` — sequential cross-check;
        ``"baseline"`` — parallel-Trim + recursive FW-BW (Algorithm 3);
        ``"method1"`` — two-phase parallelization (Algorithm 6);
        ``"method2"`` — + Trim2 + Par-WCC (Algorithm 9, the paper's
        best and this library's default).
    **kwargs:
        Per-method options.  Common ones for the parallel methods:

        ``seed`` (int): RNG seed for pivot selection.
        ``giant_threshold`` (float, default 0.01): fraction of nodes an
        SCC must cover for phase 1 to stop (Section 3.2's "say 1%").
        ``max_fwbw_trials`` (int, default 5): phase-1 pivot budget.
        ``pivot_strategy`` (str): "random" (paper), "maxdegree", "first".
        ``pivot_repr`` (str): "hybrid" (paper's set+colour scheme) or
        "scan" (colour array only — the ~10x-slower ablation).
        ``queue_k`` (int): work-queue batch size (paper: 1 for
        baseline/method1, 8 for method2).
        ``backend`` (str): "serial" (default), "threads" (real
        two-level work queue; correct but GIL-bound), or "processes"
        (GIL-free workers over shared memory; POSIX only).
        ``bfs_kernel`` (str): "level" (paper) or "dobfs"
        (direction-optimizing forward pass) for methods 1/2.
        ``cost`` (CostModel): work-unit accounting constants.

    Returns
    -------
    SCCResult
        Labels plus the execution profile, whose
        :class:`~repro.runtime.trace.WorkTrace` can be replayed on a
        :class:`~repro.runtime.machine.Machine` to obtain simulated
        times at any thread count::

            result = strongly_connected_components(g, "method2")
            machine = Machine()
            t32 = machine.simulate(result.profile.trace, threads=32)
    """
    try:
        runner = METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; choose from {sorted(METHODS)}"
        ) from None
    return runner(g, **kwargs)
