"""SCC detection results.

Output is an O(N) label array rather than a collection of node sets
(DESIGN.md §5): labels are cheap, comparable across algorithms after
canonicalization, and the histogram / giant-fraction statistics the
paper reports all fall out of one ``bincount``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

import numpy as np

from ..runtime.metrics import ExecutionProfile

__all__ = ["canonical_labels", "same_partition", "SCCResult"]


def canonical_labels(labels: np.ndarray) -> np.ndarray:
    """Relabel SCC ids by first node occurrence (order-independent form).

    Two label arrays describe the same partition iff their canonical
    forms are equal.
    """
    labels = np.asarray(labels)
    _, first_pos, inverse = np.unique(
        labels, return_index=True, return_inverse=True
    )
    # rank unique labels by their first occurrence position
    rank = np.empty(first_pos.shape[0], dtype=np.int64)
    rank[np.argsort(first_pos, kind="stable")] = np.arange(
        first_pos.shape[0], dtype=np.int64
    )
    return rank[inverse]


def same_partition(a: np.ndarray, b: np.ndarray) -> bool:
    """True iff two label arrays induce the same node partition."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    return bool(np.array_equal(canonical_labels(a), canonical_labels(b)))


@dataclass
class SCCResult:
    """The outcome of one SCC-detection run."""

    #: SCC id per node.
    labels: np.ndarray
    #: algorithm name ("tarjan", "baseline", "method1", "method2", ...).
    method: str
    #: execution profile with the work trace (None for plain baselines
    #: run without tracing).
    profile: ExecutionProfile | None = None
    #: phase id per node (Figure 8); -1 when not applicable.
    phase_of: np.ndarray | None = None
    _sizes: np.ndarray | None = field(default=None, repr=False)

    @property
    def num_sccs(self) -> int:
        return int(self.labels.max() + 1) if self.labels.size else 0

    def sizes(self) -> np.ndarray:
        """SCC sizes indexed by label id (cached)."""
        if self._sizes is None:
            self._sizes = np.bincount(self.labels, minlength=self.num_sccs)
        return self._sizes

    def largest_scc_size(self) -> int:
        sizes = self.sizes()
        return int(sizes.max()) if sizes.size else 0

    def giant_fraction(self) -> float:
        n = self.labels.shape[0]
        return self.largest_scc_size() / n if n else 0.0

    def size_histogram(self) -> Dict[int, int]:
        """``{scc_size: count}`` — the Figure 2 / Figure 9 data."""
        sizes = self.sizes()
        values, counts = np.unique(sizes[sizes > 0], return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def to_sets(self) -> List[Set[int]]:
        """Explicit node sets (small graphs / examples only)."""
        out: Dict[int, Set[int]] = {}
        for node, lab in enumerate(self.labels.tolist()):
            out.setdefault(lab, set()).add(node)
        return list(out.values())

    def simulate(self, threads: int, machine=None) -> float:
        """Simulated execution time of this run at ``threads`` threads.

        Convenience wrapper over
        :meth:`repro.runtime.machine.Machine.simulate`; requires the
        run to have been traced (all library algorithms are).
        """
        if self.profile is None:
            raise ValueError("this result carries no execution profile")
        from ..runtime.machine import Machine

        machine = machine or Machine()
        return machine.simulate(self.profile.trace, threads).total_time

    def speedup_over(self, other: "SCCResult", threads: int, machine=None) -> float:
        """Speedup of this run vs. ``other`` (typically Tarjan's) when
        this run uses ``threads`` threads and ``other`` runs serially."""
        from ..runtime.machine import Machine

        machine = machine or Machine()
        return other.simulate(1, machine) / self.simulate(threads, machine)

    def phase_fractions(self) -> Dict[str, float]:
        """Fraction of nodes identified per phase (Figure 8)."""
        from .state import PHASE_NAMES

        if self.phase_of is None:
            return {}
        n = self.phase_of.shape[0]
        return {
            name: float((self.phase_of == pid).sum()) / n
            for pid, name in PHASE_NAMES.items()
        }
