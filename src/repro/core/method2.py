"""Method 2: the full pipeline (Algorithm 9).

Par-Trim, Par-FWBW (giant SCC), Par-Trim' (Trim, then Trim2 once, then
Trim again — Trim2 is costlier, so it runs a single time between two
ordinary trims), Par-WCC (each weakly connected component of the
shattered remainder becomes its own work item), then Recur-FWBW with
K = 8 — Method 2 generates enough task parallelism that larger fetch
batches pay off (Section 4.3).

Like Method 1, the pipeline is a phase plan (:mod:`repro.core.phases`)
shared between the plain runner and the checkpointing run harness.
"""

from __future__ import annotations

from typing import List

from ..graph import CSRGraph
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from .parfwbw import par_fwbw
from .phases import PhaseSpec, run_plan
from .recurfwbw import run_recur_phase
from .result import SCCResult
from .state import SCCState
from .trim import par_trim
from .trim2 import par_trim2
from .wcc import par_wcc

__all__ = ["method2_scc", "method2_phases"]


def method2_phases(
    *,
    giant_threshold: float = 0.01,
    max_fwbw_trials: int = 5,
    pivot_strategy: str = "random",
    pivot_repr: str = "hybrid",
    bfs_kernel: str = "level",
    queue_k: int = 8,
    use_trim2: bool = True,
    wcc_directions: str = "both",
    wcc_compress: bool = True,
    backend: str = "serial",
    num_threads: int = 4,
    supervisor=None,
    phase2_batch=False,
) -> List[PhaseSpec]:
    """The Algorithm 9 pipeline as a checkpointable phase plan.

    ``use_trim2=False`` drops the Par-Trim2 step (the Section 3.4
    ablation: expect the WCC step to slow down on chain-heavy graphs).
    ``wcc_compress=False`` disables WCC pointer jumping, reproducing
    the paper's slow-convergence behaviour on high-diameter graphs.
    """

    def trim(state: SCCState, ctx) -> None:
        par_trim(state)

    def fwbw(state: SCCState, ctx) -> None:
        par_fwbw(
            state,
            0,
            giant_threshold=giant_threshold,
            max_trials=max_fwbw_trials,
            pivot_strategy=pivot_strategy,
            bfs_kernel=bfs_kernel,
        )

    def trim2(state: SCCState, ctx) -> None:
        par_trim2(state)

    def wcc(state: SCCState, ctx) -> None:
        items = par_wcc(
            state, directions=wcc_directions, compress=wcc_compress
        )
        if pivot_repr == "scan":
            items = [(c, None) for c, _ in items]
        ctx["queue"] = items

    def recur(state: SCCState, ctx) -> None:
        run_recur_phase(
            state,
            ctx["queue"],
            queue_k=queue_k,
            pivot_strategy=pivot_strategy,
            backend=ctx.get("backend", backend),
            num_threads=num_threads,
            supervisor=supervisor,
            deadline=ctx.get("deadline"),
            session=ctx.get("session"),
            phase2_batch=phase2_batch,
        )

    plan = [
        PhaseSpec("par_trim_1", "par_trim", trim),
        PhaseSpec("par_fwbw", "par_fwbw", fwbw),
        # Par-Trim' = Trim, Trim2 (once), Trim.
        PhaseSpec("par_trim_2", "par_trim", trim),
    ]
    if use_trim2:
        plan.append(PhaseSpec("par_trim2", "par_trim2", trim2))
        plan.append(PhaseSpec("par_trim_3", "par_trim", trim))
    plan.append(PhaseSpec("par_wcc", "par_wcc", wcc))
    plan.append(
        PhaseSpec("recur_fwbw", "recur_fwbw", recur, uses_backend=True)
    )
    return plan


def method2_scc(
    g: CSRGraph,
    *,
    seed: int | None = 0,
    cost: CostModel = DEFAULT_COST_MODEL,
    **kwargs,
) -> SCCResult:
    """Algorithm 9.  See :func:`repro.core.api.strongly_connected_components`."""
    state = SCCState(g, seed=seed, cost=cost)
    run_plan(state, method2_phases(**kwargs))
    state.check_done()
    return SCCResult(
        labels=state.labels,
        method="method2",
        profile=state.profile,
        phase_of=state.phase_of,
    )
