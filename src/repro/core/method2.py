"""Method 2: the full pipeline (Algorithm 9).

Par-Trim, Par-FWBW (giant SCC), Par-Trim' (Trim, then Trim2 once, then
Trim again — Trim2 is costlier, so it runs a single time between two
ordinary trims), Par-WCC (each weakly connected component of the
shattered remainder becomes its own work item), then Recur-FWBW with
K = 8 — Method 2 generates enough task parallelism that larger fetch
batches pay off (Section 4.3).
"""

from __future__ import annotations

from ..graph import CSRGraph
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from .parfwbw import par_fwbw
from .recurfwbw import run_recur_phase
from .result import SCCResult
from .state import SCCState
from .trim import par_trim
from .trim2 import par_trim2
from .wcc import par_wcc

__all__ = ["method2_scc"]


def method2_scc(
    g: CSRGraph,
    *,
    seed: int | None = 0,
    cost: CostModel = DEFAULT_COST_MODEL,
    giant_threshold: float = 0.01,
    max_fwbw_trials: int = 5,
    pivot_strategy: str = "random",
    pivot_repr: str = "hybrid",
    bfs_kernel: str = "level",
    queue_k: int = 8,
    use_trim2: bool = True,
    wcc_directions: str = "both",
    wcc_compress: bool = True,
    backend: str = "serial",
    num_threads: int = 4,
    supervisor=None,
) -> SCCResult:
    """Algorithm 9.  See :func:`repro.core.api.strongly_connected_components`.

    ``use_trim2=False`` drops the Par-Trim2 step (the Section 3.4
    ablation: expect the WCC step to slow down on chain-heavy graphs).
    ``wcc_compress=False`` disables WCC pointer jumping, reproducing
    the paper's slow-convergence behaviour on high-diameter graphs.
    """
    state = SCCState(g, seed=seed, cost=cost)
    # Phase 1: parallelism in trims, traversals and WCC.
    with state.profile.wall_timer("par_trim"):
        par_trim(state)
    with state.profile.wall_timer("par_fwbw"):
        par_fwbw(
            state,
            0,
            giant_threshold=giant_threshold,
            max_trials=max_fwbw_trials,
            pivot_strategy=pivot_strategy,
            bfs_kernel=bfs_kernel,
        )
    # Par-Trim' = Trim, Trim2 (once), Trim.
    with state.profile.wall_timer("par_trim"):
        par_trim(state)
    if use_trim2:
        with state.profile.wall_timer("par_trim2"):
            par_trim2(state)
        with state.profile.wall_timer("par_trim"):
            par_trim(state)
    with state.profile.wall_timer("par_wcc"):
        items = par_wcc(
            state, directions=wcc_directions, compress=wcc_compress
        )
    # Phase 2: parallelism in recursion.
    with state.profile.wall_timer("recur_fwbw"):
        initial = items
        if pivot_repr == "scan":
            initial = [(c, None) for c, _ in items]
        run_recur_phase(
            state,
            initial,
            queue_k=queue_k,
            pivot_strategy=pivot_strategy,
            backend=backend,
            num_threads=num_threads,
            supervisor=supervisor,
        )
    state.check_done()
    return SCCResult(
        labels=state.labels,
        method="method2",
        profile=state.profile,
        phase_of=state.phase_of,
    )
