"""Par-Trim2: one-shot parallel detection of size-2 SCCs (Algorithm 8).

Figure 4's two patterns: nodes A and B form a tight 2-cycle and either
(a) nothing else flows *into* the pair, or (b) nothing else flows *out*
of it.  Formally (in-pattern): if n's colour-restricted in-degree is 1,
its sole in-neighbour is k, the edge n->k exists, and k's in-degree is
also 1, then every cycle through n or k is exactly {n, k} — any longer
cycle would need a second way in.  The out-pattern is the mirror image.

Applied once (not iterated) because it is costlier than Trim; its real
payoff is cutting chains of weakly connected 2-cycles, which shortens
the Par-WCC convergence by up to 50 % (Section 3.4) — see
``benchmarks/bench_ablation_trim2.py``.

Vectorization notes: candidates are nodes with effective degree exactly
1; their unique valid neighbour falls out of the same edge expansion
that computed the degrees; the ``n -> k`` / ``k -> n`` closure check
reuses one more expansion and a pair-match instead of per-pair binary
searches.
"""

from __future__ import annotations

import numpy as np

from ..kernels import trim2_pattern_pairs
from .state import PHASE_TRIM2, SCCState
from .trim import effective_degrees

__all__ = ["par_trim2"]


def _pattern_pairs(
    state: SCCState,
    nodes: np.ndarray,
    eff_primary: np.ndarray,
    *,
    incoming: bool,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Find (n, k) pairs for one of the two Figure 4 patterns.

    ``incoming=True`` is the in-pattern (eff in-degree 1 on both ends,
    plus the n->k back edge); ``incoming=False`` mirrors it.
    Returns (n_array, k_array, edges_scanned).
    """
    g = state.graph
    if incoming:
        nbr_ptr, nbr_idx = g.in_indptr, g.in_indices  # find the 1 in-nbr
        back_ptr, back_idx = g.indptr, g.indices  # check n -> k
    else:
        nbr_ptr, nbr_idx = g.indptr, g.indices
        back_ptr, back_idx = g.in_indptr, g.in_indices

    cands = nodes[eff_primary[nodes] == 1]
    return trim2_pattern_pairs(
        nbr_ptr, nbr_idx, back_ptr, back_idx, cands, state.color, eff_primary
    )


def par_trim2(state: SCCState, *, phase: str = "par_trim2") -> int:
    """Detect and detach pattern size-2 SCCs; returns nodes detached."""
    cost = state.cost
    active = np.flatnonzero(~state.mark)
    if active.size == 0:
        state.trace.parallel_for(phase, work=0.0, items=0)
        return 0
    eff_out, eff_in, deg_scanned = effective_degrees(state, active)
    a_in, b_in, s1 = _pattern_pairs(state, active, eff_in, incoming=True)
    a_out, b_out, s2 = _pattern_pairs(state, active, eff_out, incoming=False)
    state.trace.parallel_for(
        phase,
        work=cost.stream(
            nodes=2 * active.size, edges=deg_scanned + s1 + s2
        ),
        items=int(active.size),
        schedule="dynamic",
    )
    # Each pair is discovered from both endpoints (and possibly by both
    # patterns); canonicalize as (min, max) and deduplicate.
    a = np.concatenate([a_in, a_out])
    b = np.concatenate([b_in, b_out])
    if a.size == 0:
        state.profile.bump("trim2_pairs", 0)
        return 0
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
    # A self-loop node whose only colour-valid edge is the loop matches
    # the pattern with k == n; it is a size-1 SCC, not a pair.
    selfs = pairs[:, 0] == pairs[:, 1]
    if selfs.any():
        state.mark_singletons(pairs[selfs, 0], PHASE_TRIM2)
        pairs = pairs[~selfs]
    state.mark_pairs(pairs[:, 0], pairs[:, 1], PHASE_TRIM2)
    state.profile.bump("trim2_pairs", int(pairs.shape[0]))
    return int(pairs.shape[0] * 2 + selfs.sum())
